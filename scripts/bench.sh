#!/bin/sh
# Component benchmark snapshot: runs the training-pipeline benchmarks
# (BenchmarkMetaTrain serial/parallel, BenchmarkReviseParallel,
# BenchmarkMine, BenchmarkFilter, BenchmarkStreamObserve) with -benchmem
# and writes the parsed numbers to BENCH_2.json, so performance work has
# a committed before/after record. Wall-clock speedups depend on the
# machine: the snapshot records GOMAXPROCS alongside every number.
#
# Usage: sh scripts/bench.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_2.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

BENCHTIME="${BENCHTIME:-5x}"

echo "== component benchmarks (benchtime $BENCHTIME)"
go test -run '^$' -bench 'BenchmarkMetaTrain$|BenchmarkReviseParallel$|BenchmarkFilter$|BenchmarkStreamObserve$' \
    -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"
go test -run '^$' -bench 'BenchmarkMine$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/learner/assoc/ | tee -a "$TMP"

awk -v out="$OUT" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^goos:/ { goos = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n" > out
    else {
        printf "{\n  \"benchmarks\": [\n" > out
    }
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns > out
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes > out
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs > out
    printf "}" > out
}
END {
    if (!n) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "\n  ],\n" > out
    # Pre-parallelization numbers (same machine class, benchtime 3x),
    # measured before the PR 2 training-pipeline work: the serial
    # BenchmarkMetaTrain was one monolithic pass.
    printf "  \"baseline_before_parallel_pipeline\": [\n" > out
    printf "    {\"name\": \"BenchmarkMetaTrain\", \"ns_per_op\": 13887620, \"bytes_per_op\": 3667186, \"allocs_per_op\": 99108},\n" > out
    printf "    {\"name\": \"BenchmarkFilter\", \"ns_per_op\": 2873123}\n" > out
    printf "  ],\n" > out
    printf "  \"goos\": \"%s\",\n", goos > out
    printf "  \"cpu\": \"%s\",\n", cpu > out
    printf "  \"gomaxprocs\": %d,\n", procs > out
    printf "  \"benchtime\": \"%s\",\n", benchtime > out
    printf "  \"note\": \"parallel speedup scales with cores; with gomaxprocs=1 the parallel rows measure scheduling overhead only — outputs are byte-identical either way (see the *parallel_test.go equivalence suites)\"\n}\n" > out
}
' procs="$(nproc 2>/dev/null || echo 1)" benchtime="$BENCHTIME" "$TMP"

echo "== wrote $OUT"
