#!/bin/sh
# Component benchmark snapshot: runs the training-pipeline and serving
# hot-path benchmarks (BenchmarkMetaTrain serial/parallel,
# BenchmarkReviseParallel, BenchmarkMine, BenchmarkFilter,
# BenchmarkStreamObserve, BenchmarkIngestBatch,
# BenchmarkFleetIngestBatch, BenchmarkParseLine) and the incremental
# retraining pair (BenchmarkRetrainFull vs BenchmarkRetrainIncremental —
# the O(window) rebuild against the sufficient-statistics delta-apply on
# the same window sequence) with -benchmem, and writes the parsed numbers
# to BENCH_7.json, so performance work has a committed before/after
# record. Wall-clock speedups depend on the machine: the snapshot records
# GOMAXPROCS alongside every number.
#
# A second phase runs the closed-loop capacity sweep: cmd/loadgen
# replays a bgsim feed at stepped offered rates (plus a 2x overdrive
# step, auto-extending until the p99 target is actually breached)
# against a freshly started durable cmd/serve (-state-dir, so every ack
# is backed by a group-committed fsync) with CONNECTIONS batches in
# flight — after a short warmup run that absorbs the one-time initial
# batch training pass — and writes the capacity curve — per-step p50/p99 and the
# highest achieved rate that met the p99 target, with knee_found
# asserting the verdict is a real knee — to BENCH_10.json. The daemon
# runs with an out-of-order tolerance scaled to the sweep's time
# compression, since concurrent in-flight batches arrive interleaved in
# wall time but carry compressed stream timestamps. After the sweep a
# short rerun at the measured capacity rate captures a CPU profile via
# -pprof into results/cpu_capacity.pprof. The defaults are a short
# smoke sweep; raise RATES/STEP_DURATION for steadier numbers.
#
# A third phase measures the hot-standby story (BENCH_9.json): a
# follower tails a loaded leader while the standby lag gauge is sampled
# (steady-state replication lag), the leader is killed -9 and the
# follower promoted with the clock running (failover_seconds = kill to
# first accepted write on the promoted daemon), and a raw bgsim log is
# backfilled through POST /backfill (parallel-parse lines/s, against the
# raw disk read rate of the same file as the ceiling).
#
# Usage: sh scripts/bench.sh [component.json] [capacity.json] [standby.json]
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_7.json}"
CAP_OUT="${2:-BENCH_10.json}"
STANDBY_OUT="${3:-BENCH_9.json}"
TMP="$(mktemp)"
BIN="$(mktemp -d)"
SERVE_PID=""
FOLLOW_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    [ -n "$FOLLOW_PID" ] && kill -9 "$FOLLOW_PID" 2>/dev/null || true
    rm -rf "$TMP" "$BIN"
}
trap cleanup EXIT INT TERM

BENCHTIME="${BENCHTIME:-5x}"
# The retrain pair amortizes one expensive workload generation across
# both benchmarks; a few more iterations keep the ratio stable.
RETRAINTIME="${RETRAINTIME:-10x}"
# The serving hot path is sub-microsecond per event; give it enough
# iterations that per-op numbers mean something and the fixed
# drain-on-close cost is amortized away (the fleet row pays a registry
# close too — under ~10^5 events it reads artificially slow).
STREAMTIME="${STREAMTIME:-200000x}"

echo "== component benchmarks (benchtime $BENCHTIME)"
go test -run '^$' -bench 'BenchmarkMetaTrain$|BenchmarkReviseParallel$|BenchmarkFilter$' \
    -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"
echo "== serving hot path (benchtime $STREAMTIME)"
go test -run '^$' -bench 'BenchmarkStreamObserve$|BenchmarkIngestBatch$|BenchmarkFleetIngestBatch$' \
    -benchmem -benchtime "$STREAMTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkParseLine$' \
    -benchmem -benchtime "$STREAMTIME" ./internal/raslog/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkMine$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/learner/assoc/ | tee -a "$TMP"
echo "== incremental retraining (benchtime $RETRAINTIME)"
go test -run '^$' -bench 'BenchmarkRetrainFull$|BenchmarkRetrainIncremental$' \
    -benchmem -benchtime "$RETRAINTIME" . | tee -a "$TMP"

awk -v out="$OUT" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^goos:/ { goos = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    nsOf[name] = ns
    if (n++) printf ",\n" > out
    else {
        printf "{\n  \"benchmarks\": [\n" > out
    }
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns > out
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes > out
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs > out
    printf "}" > out
}
END {
    if (!n) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "\n  ],\n" > out
    # Hot-path numbers before the zero-allocation serving work (the
    # BENCH_2.json snapshot, same machine class, benchtime 10x): the
    # sequencer heap boxed entries, the collector pended into a map, the
    # filters and predictor keyed on strings, and each measured run also
    # amortized one mid-run retrain — all gone from the after rows.
    printf "  \"baseline_before_hot_path\": [\n" > out
    printf "    {\"name\": \"BenchmarkStreamObserve\", \"ns_per_op\": 78857, \"bytes_per_op\": 35279, \"allocs_per_op\": 209}\n" > out
    printf "  ],\n" > out
    # Pre-parallelization numbers (same machine class, benchtime 3x),
    # measured before the PR 2 training-pipeline work: the serial
    # BenchmarkMetaTrain was one monolithic pass.
    printf "  \"baseline_before_parallel_pipeline\": [\n" > out
    printf "    {\"name\": \"BenchmarkMetaTrain\", \"ns_per_op\": 13887620, \"bytes_per_op\": 3667186, \"allocs_per_op\": 99108},\n" > out
    printf "    {\"name\": \"BenchmarkFilter\", \"ns_per_op\": 2873123}\n" > out
    printf "  ],\n" > out
    # The headline number of the incremental-retraining work: how many
    # times faster a sufficient-statistics delta-apply retrain is than
    # re-mining the same training window from scratch.
    if (nsOf["BenchmarkRetrainFull"] && nsOf["BenchmarkRetrainIncremental"])
        printf "  \"retrain_speedup\": %.1f,\n", \
            nsOf["BenchmarkRetrainFull"] / nsOf["BenchmarkRetrainIncremental"] > out
    printf "  \"goos\": \"%s\",\n", goos > out
    printf "  \"cpu\": \"%s\",\n", cpu > out
    printf "  \"gomaxprocs\": %d,\n", procs > out
    printf "  \"benchtime\": \"%s\",\n", benchtime > out
    printf "  \"note\": \"parallel speedup scales with cores; with gomaxprocs=1 the parallel rows measure scheduling overhead only — outputs are byte-identical either way (see the *parallel_test.go equivalence suites). Serving rows ran at the streamtime iteration count so sub-microsecond per-event costs are resolved.\"\n}\n" > out
}
' procs="$(nproc 2>/dev/null || echo 1)" benchtime="$BENCHTIME" "$TMP"

echo "== wrote $OUT"

# --- capacity sweep: closed-loop load harness against a live daemon ------
RATES="${RATES:-4000,8000,16000,32000,48000,64000}"
STEP_DURATION="${STEP_DURATION:-2s}"
CONNECTIONS="${CONNECTIONS:-8}"
# Feed density: at the historical 0.02 scale a stream-week is ~180
# events, so -retrain 1 fires hundreds of retrains per wall-second
# under compression — a measurement artifact, not a workload. At scale
# 1 a stream-week is ~8k events, putting retrain cadence at a few per
# second at the sweep's rates: still exercised (and priced) in-band,
# no longer the dominant term.
FEED_SCALE="${FEED_SCALE:-1}"
PORT="${LOADGEN_PORT:-18911}"
# Stream-time out-of-order tolerance for the daemon. With -connections
# batches in flight, milliseconds of wall-clock arrival skew map to
# enormous stream-time skew at the sweep's 10^6-10^8x time compression;
# the tolerance must absorb it or cross-batch interleaving shows up as
# bogus late drops. 2e9 seconds (~63 years of stream time) keeps the
# reorder buffer the sole ordering authority — its size cap (default
# 4096, above connections x batch) still bounds memory and releases.
REORDER="${REORDER:-2000000000}"
echo "== capacity sweep (rates $RATES, $STEP_DURATION per step, $CONNECTIONS connections, durable)"
go build -o "$BIN/serve" ./cmd/serve
go build -o "$BIN/loadgen" ./cmd/loadgen
# Training windows sized so the compressed replay actually retrains and
# emits warnings — the sweep measures warning-emission lag, not just
# ingest latency. -state-dir makes every 200 a group-committed fsync:
# this is the durable capacity, not the in-memory one BENCH_8 measured.
"$BIN/serve" -addr "127.0.0.1:$PORT" -train 2 -retrain 1 -admit-wait 500ms \
    -state-dir "$BIN/capstate" -reorder "$REORDER" -pprof \
    > "$BIN/serve.log" 2>&1 &
SERVE_PID=$!
i=0
until curl -fsS "http://127.0.0.1:$PORT/healthz" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "bench.sh: daemon never became healthy" >&2
        cat "$BIN/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
# Warmup: carry the daemon past its one-time initial batch training
# pass (a deploy cost, not capacity — it would otherwise land as a
# ~200ms pause inside whichever measured step trips it). Steady-state
# incremental retrains still fire inside the measured sweep and are
# priced into every step's latency.
"$BIN/loadgen" -addr "http://127.0.0.1:$PORT" -rates 8000 -step-duration 3s \
    -connections "$CONNECTIONS" -batch 256 -weeks 2 -scale "$FEED_SCALE" \
    -allow-open-ended -out "$BIN/warmup.json" > "$BIN/warmup.log" 2>&1
"$BIN/loadgen" -addr "http://127.0.0.1:$PORT" -rates "$RATES" -overdrive \
    -auto-extend -connections "$CONNECTIONS" \
    -step-duration "$STEP_DURATION" -batch 256 -weeks 2 -scale "$FEED_SCALE" \
    -p99-target 50ms -out "$CAP_OUT"
# CPU profile at the knee: rerun the measured capacity rate alone while
# net/http/pprof samples the daemon — the profile of the peak step, not
# of the whole ramp.
CAP_RATE=$(grep -o '"capacity_events_per_sec": *[0-9.]*' "$CAP_OUT" | grep -o '[0-9.]*$' | cut -d. -f1)
if [ "${CAP_RATE:-0}" -gt 0 ]; then
    mkdir -p results
    PROF_SEC="${PROF_SEC:-3}"
    curl -fsS "http://127.0.0.1:$PORT/debug/pprof/profile?seconds=$PROF_SEC" \
        -o results/cpu_capacity.pprof &
    PROF_PID=$!
    "$BIN/loadgen" -addr "http://127.0.0.1:$PORT" -rates "$CAP_RATE" \
        -connections "$CONNECTIONS" -step-duration "$((PROF_SEC + 2))s" \
        -batch 256 -weeks 2 -scale "$FEED_SCALE" -allow-open-ended \
        -out "$BIN/profile-sweep.json" > "$BIN/profile-loadgen.log" 2>&1 || true
    wait "$PROF_PID" || echo "bench.sh: WARN: profile capture failed" >&2
    [ -s results/cpu_capacity.pprof ] && echo "== wrote results/cpu_capacity.pprof (peak step, ${PROF_SEC}s)"
fi
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "== wrote $CAP_OUT"

# --- standby: replication lag, failover time, backfill throughput --------
FPORT=$((PORT + 1))
FADDR="http://127.0.0.1:$FPORT"
LADDR="http://127.0.0.1:$PORT"
STANDBY_RATE="${STANDBY_RATE:-2000}"
echo "== standby bench (leader + follower at $STANDBY_RATE ev/s, then failover + backfill)"
go build -o "$BIN/bgsim-gen" ./cmd/bgsim-gen

wait_healthy() { # wait_healthy BASE LOG
    i=0
    until curl -fsS "$1/healthz" > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "bench.sh: daemon at $1 never became healthy" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

"$BIN/serve" -addr "127.0.0.1:$PORT" -train 2 -retrain 1 -admit-wait 500ms \
    -state-dir "$BIN/leader" > "$BIN/leader.log" 2>&1 &
SERVE_PID=$!
wait_healthy "$LADDR" "$BIN/leader.log"
"$BIN/serve" -addr "127.0.0.1:$FPORT" -train 2 -retrain 1 \
    -state-dir "$BIN/standby" -follow "$LADDR" -follow-poll 25ms \
    > "$BIN/follower.log" 2>&1 &
FOLLOW_PID=$!
wait_healthy "$FADDR" "$BIN/follower.log"

# Drive the leader at one steady rate while sampling the follower's lag
# gauge — the steady-state replication lag under load.
"$BIN/loadgen" -addr "$LADDR" -rates "$STANDBY_RATE" -step-duration 6s \
    -batch 256 -weeks 2 -scale 0.02 -allow-open-ended \
    -out "$BIN/standby-sweep.json" \
    > "$BIN/standby-loadgen.log" 2>&1 &
LG_PID=$!
: > "$BIN/lag.samples"
i=0
while kill -0 "$LG_PID" 2>/dev/null && [ "$i" -lt 40 ]; do
    curl -fsS "$FADDR/metrics" 2>/dev/null |
        awk '$1 == "standby_lag_seq" {print $2}' >> "$BIN/lag.samples" || true
    i=$((i + 1))
    sleep 0.25
done
wait "$LG_PID" 2>/dev/null || true
LAG_MAX=$(awk 'BEGIN{m=0} {if ($1+0 > m) m = $1+0} END{printf "%d", m}' "$BIN/lag.samples")
LAG_MEAN=$(awk '{s += $1; n++} END{printf "%.1f", n ? s/n : 0}' "$BIN/lag.samples")

# Failover with the clock running: kill -9 the leader, promote the
# follower, and stop the watch at the first accepted write.
# Full-scale weeks: the backfill corpus has to be big enough that its
# wall time clears millisecond resolution, or lines/s reads as zero.
"$BIN/bgsim-gen" -system sdsc -seed 9 -weeks 8 -scale 1 -o "$BIN/backfill.log"
head -n 100 "$BIN/backfill.log" > "$BIN/nudge.log"
T0=$(date +%s%N)
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
curl -fsS -X POST "$FADDR/promote" > /dev/null
i=0
until curl -fsS -X POST --data-binary "@$BIN/nudge.log" "$FADDR/ingest/batch" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        echo "bench.sh: promoted follower never accepted writes" >&2
        cat "$BIN/follower.log" >&2
        exit 1
    fi
    sleep 0.05
done
T1=$(date +%s%N)
FAILOVER_S=$(awk "BEGIN{printf \"%.3f\", ($T1 - $T0) / 1e9}")
kill -9 "$FOLLOW_PID" 2>/dev/null || true
wait "$FOLLOW_PID" 2>/dev/null || true
FOLLOW_PID=""

# Backfill throughput: a raw historical log through POST /backfill on a
# fresh daemon, against the raw disk read rate of the same file.
BF_LINES=$(wc -l < "$BIN/backfill.log")
cat "$BIN/backfill.log" > /dev/null # warm the page cache for both reads
R0=$(date +%s%N)
cat "$BIN/backfill.log" > /dev/null
R1=$(date +%s%N)
RAW_LPS=$(awk "BEGIN{d = ($R1 - $R0) / 1e9; printf \"%d\", (d > 0 ? $BF_LINES / d : 0)}")
"$BIN/serve" -addr "127.0.0.1:$PORT" -train 2 -retrain 1 \
    > "$BIN/backfill-serve.log" 2>&1 &
SERVE_PID=$!
wait_healthy "$LADDR" "$BIN/backfill-serve.log"
BF_JSON=$(curl -fsS -X POST --data-binary "@$BIN/backfill.log" "$LADDR/backfill")
BF_FED=$(echo "$BF_JSON" | grep -o '"lines": *[0-9]*' | grep -o '[0-9]*$')
BF_MS=$(echo "$BF_JSON" | grep -o '"duration_ms": *[0-9]*' | grep -o '[0-9]*$')
BF_LPS=$(awk "BEGIN{printf \"%d\", ($BF_MS > 0 ? $BF_FED * 1000 / $BF_MS : 0)}")
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

cat > "$STANDBY_OUT" <<EOF
{
  "failover_seconds": $FAILOVER_S,
  "standby_lag_seq_mean": $LAG_MEAN,
  "standby_lag_seq_max": $LAG_MAX,
  "standby_offered_rate": $STANDBY_RATE,
  "backfill_lines": $BF_FED,
  "backfill_lines_per_sec": $BF_LPS,
  "raw_read_lines_per_sec": $RAW_LPS,
  "gomaxprocs": $(nproc 2>/dev/null || echo 1),
  "note": "failover_seconds is kill -9 of the leader to the first accepted write on the promoted follower (manual POST /promote, 25ms pull interval). Lag is the follower's standby_lag_seq gauge sampled every 250ms during a $STANDBY_RATE ev/s closed-loop feed. Backfill is POST /backfill of a raw bgsim log on a fresh daemon (parallel parse, ordered submit); raw_read is cat-to-devnull of the same warmed file — the disk-read ceiling, not a comparable service."
}
EOF
echo "== wrote $STANDBY_OUT"
