package repro

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (DESIGN.md §4 maps each to its modules), plus
// ablation benchmarks for the starred design choices of DESIGN.md §5.
// Each experiment benchmark regenerates its table/figure on the quick
// suite; `go test -bench . -benchmem` therefore re-runs the entire
// evaluation. cmd/experiments runs the same experiments at full scale.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bgsim"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/learner"
	"repro/internal/learner/assoc"
	"repro/internal/learner/incr"
	"repro/internal/meta"
	"repro/internal/predictor"
	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/reviser"
	"repro/internal/stream"
)

// benchSuite caches the quick suite across benchmarks (loading once keeps
// per-benchmark iterations meaningful).
var benchSuite *exp.Suite

func suite(b *testing.B) *exp.Suite {
	b.Helper()
	if benchSuite == nil {
		s, err := exp.QuickSuite(2008, 24)
		if err != nil {
			b.Fatal(err)
		}
		benchSuite = s
	}
	return benchSuite
}

// benchReport runs one experiment per iteration and discards the render.
func benchReport(b *testing.B, run func() (*exp.Report, error)) {
	b.Helper()
	s := suite(b) // load outside the timer
	_ = s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2LogDescription(b *testing.B)   { benchReport(b, suite(b).Table2) }
func BenchmarkTable3Categories(b *testing.B)       { benchReport(b, suite(b).Table3) }
func BenchmarkTable4FilterSweep(b *testing.B)      { benchReport(b, suite(b).Table4) }
func BenchmarkTable5Overhead(b *testing.B)         { benchReport(b, suite(b).Table5) }
func BenchmarkFigure4FatalsPerDay(b *testing.B)    { benchReport(b, suite(b).Figure4) }
func BenchmarkFigure5InterArrivalCDF(b *testing.B) { benchReport(b, suite(b).Figure5) }
func BenchmarkFigure7MetaVsBase(b *testing.B)      { benchReport(b, suite(b).Figure7) }
func BenchmarkFigure8Venn(b *testing.B)            { benchReport(b, suite(b).Figure8) }
func BenchmarkFigure9TrainingSize(b *testing.B)    { benchReport(b, suite(b).Figure9) }
func BenchmarkFigure10RetrainFreq(b *testing.B)    { benchReport(b, suite(b).Figure10) }
func BenchmarkFigure11Reviser(b *testing.B)        { benchReport(b, suite(b).Figure11) }
func BenchmarkFigure12RuleChurn(b *testing.B)      { benchReport(b, suite(b).Figure12) }
func BenchmarkFigure13WindowSweep(b *testing.B)    { benchReport(b, suite(b).Figure13) }

// ---------------------------------------------------------------------------
// Component micro-benchmarks: the per-stage costs behind Table 5.
// ---------------------------------------------------------------------------

func benchTagged(b *testing.B) []preprocess.TaggedEvent {
	b.Helper()
	return suite(b).Systems[0].Tagged
}

func BenchmarkGenerateLog(b *testing.B) {
	cfg := bgsim.ANL(1).Scaled(4, 0.02)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := bgsim.NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilter(b *testing.B) {
	cfg := bgsim.ANL(1).Scaled(4, 0.1)
	g, _ := bgsim.NewGenerator(cfg)
	raw, err := g.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preprocess.Filter{Threshold: 300}.Apply(raw)
	}
}

// BenchmarkMetaTrain measures one full training pass (three base
// learners + reviser) at both ends of the parallelism knob; the outputs
// are identical, only the schedule differs (serial = 1 worker,
// parallel = GOMAXPROCS workers with concurrent learners, sharded
// Apriori counting and partitioned reviser scoring).
func BenchmarkMetaTrain(b *testing.B) {
	events := benchTagged(b)
	p := learner.Params{WindowSec: 300}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ml := meta.New().SetParallelism(tc.workers)
				if _, err := ml.Train(events, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReviseParallel isolates the reviser's single-pass scorer over
// a realistic candidate set, serial vs partitioned across workers.
func BenchmarkReviseParallel(b *testing.B) {
	events := benchTagged(b)
	p := learner.Params{WindowSec: 300}
	ml := meta.New()
	ml.UseReviser = false
	report, err := ml.Train(events, p)
	if err != nil {
		b.Fatal(err)
	}
	if len(report.Candidates) == 0 {
		b.Fatal("no candidates to score")
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			rv := reviser.New()
			rv.Parallelism = tc.workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rv.Revise(report.Candidates, events, p)
			}
		})
	}
}

func BenchmarkPredictorObserve(b *testing.B) {
	events := benchTagged(b)
	p := learner.Params{WindowSec: 300}
	report, err := meta.New().Train(events, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr := predictor.New(report.Kept, p)
		pr.ObserveAll(events)
	}
}

// benchRawLog generates the sorted replay feed shared by the streaming
// benchmarks, returning the log and its stream-time span (replays shift
// subsequent laps by the span so time keeps moving forward).
func benchRawLog(b *testing.B) (*raslog.Log, int64) {
	b.Helper()
	cfg := bgsim.SDSC(1).Scaled(8, 0.1)
	g, _ := bgsim.NewGenerator(cfg)
	raw, err := g.Generate()
	if err != nil {
		b.Fatal(err)
	}
	raw.SortByTime()
	return raw, raw.End() - raw.Start() + 1
}

// benchStreamConfig pushes both training horizons beyond any replay so
// the measured loop is pure serving (a mid-run retrain at short
// benchtimes used to dominate the per-op numbers and hide the hot path);
// the predictor is armed by one manual TrainNow instead.
func benchStreamConfig() stream.Config {
	scfg := stream.Defaults()
	scfg.InitialTrain = 1_000_000 * time.Hour // train manually below
	scfg.RetrainEvery = 1_000_000 * time.Hour // and never again
	return scfg
}

// benchWarm loads the history into a fresh service and arms its
// predictor with one manual training pass.
func benchWarm(b *testing.B, svc *stream.Service, raw *raslog.Log) {
	b.Helper()
	ctx := context.Background()
	for _, e := range raw.Events {
		if err := svc.Ingest(ctx, e); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := svc.TrainNow(); err != nil {
		b.Fatal(err)
	}
}

// benchStreamService builds a warm streaming service for the observe
// benchmarks: history loaded, predictor armed, no retrain in sight.
func benchStreamService(b *testing.B) (*stream.Service, *raslog.Log, int64) {
	b.Helper()
	raw, span := benchRawLog(b)
	svc, err := stream.New(benchStreamConfig())
	if err != nil {
		b.Fatal(err)
	}
	benchWarm(b, svc, raw)
	return svc, raw, span
}

// BenchmarkStreamObserve pushes events one at a time through the full
// incremental pipeline of internal/stream — sequencer, per-location
// shards, ordered collector, live predictor — and reports sustained
// events/sec.
func BenchmarkStreamObserve(b *testing.B) {
	svc, raw, span := benchStreamService(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	n := len(raw.Events)
	for i := 0; i < b.N; i++ {
		e := raw.Events[i%n]
		// Replays must move forward in stream time or they are late-dropped.
		e.Time += int64(1+i/n) * span
		if err := svc.Ingest(ctx, e); err != nil {
			b.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil { // drain: count full pipeline cost
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkIngestBatch is the same pipeline fed through IngestBatch in
// chunks: events enter the sequencer together and every released burst
// shares one WAL group commit (no store here, so the measured delta vs
// BenchmarkStreamObserve is the intake batching alone).
func BenchmarkIngestBatch(b *testing.B) {
	svc, raw, span := benchStreamService(b)
	ctx := context.Background()
	const chunk = 512
	b.ReportAllocs()
	b.ResetTimer()
	n := len(raw.Events)
	batch := make([]raslog.Event, 0, chunk)
	for i := 0; i < b.N; i++ {
		e := raw.Events[i%n]
		e.Time += int64(1+i/n) * span
		batch = append(batch, e)
		if len(batch) == chunk || i == b.N-1 {
			if _, err := svc.IngestBatch(ctx, batch); err != nil {
				b.Fatal(err)
			}
			// The service owns the submitted slice; start a fresh one.
			batch = make([]raslog.Event, 0, chunk)
		}
	}
	if err := svc.Close(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFleetIngestBatch is BenchmarkIngestBatch routed through a
// fleet registry: each chunk pays one Acquire/Release (a map lookup plus
// two mutex hops) on top of the identical single-tenant pipeline. The
// bar is parity — within 10% of BenchmarkIngestBatch, still zero
// allocations per event — proving fleet multiplexing adds no per-event
// cost to the hot path.
func BenchmarkFleetIngestBatch(b *testing.B) {
	raw, span := benchRawLog(b)
	reg, err := fleet.New(fleet.Config{Stream: benchStreamConfig()})
	if err != nil {
		b.Fatal(err)
	}
	h, err := reg.Acquire("bench", true)
	if err != nil {
		b.Fatal(err)
	}
	benchWarm(b, h.Service(), raw)
	h.Release()

	ctx := context.Background()
	const chunk = 512
	b.ReportAllocs()
	b.ResetTimer()
	n := len(raw.Events)
	batch := make([]raslog.Event, 0, chunk)
	for i := 0; i < b.N; i++ {
		e := raw.Events[i%n]
		e.Time += int64(1+i/n) * span
		batch = append(batch, e)
		if len(batch) == chunk || i == b.N-1 {
			h, err := reg.Acquire("bench", false)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := h.Service().IngestBatch(ctx, batch); err != nil {
				b.Fatal(err)
			}
			h.Release()
			batch = make([]raslog.Event, 0, chunk)
		}
	}
	if err := reg.Close(); err != nil { // drain: count full pipeline cost
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkRuleSwap measures the retrainer's copy-on-write publish: build
// a predictor over the refreshed rule set and swap it behind the atomic
// pointer the hot observe path loads from.
// ---------------------------------------------------------------------------
// Incremental retraining (DESIGN.md §12): delta-apply vs O(window) rebuild.
// ---------------------------------------------------------------------------

// retrainWindow is one retrain position: the training window [from, to)
// and the matching index range into the event slice.
type retrainWindow struct {
	from, to int64
	lo, hi   int
}

// retrainBench caches the dense retrain workload across the benchmark
// pair so BenchmarkRetrainFull and BenchmarkRetrainIncremental measure
// identical window sequences.
var retrainBench struct {
	events []preprocess.TaggedEvent
	wins   []retrainWindow
}

// benchRetrainWorkload is the dense-fleet retrain scenario: the merged
// post-filter streams of many ANL-style systems (the aggregate volume a
// packed multi-tenant fleet trains over), with a multi-week training
// window sliding forward one minute of stream time per retrain — under
// RetrainLimiter pressure the slide is tiny relative to the window, which
// is precisely where delta-applies pay off.
func benchRetrainWorkload(b *testing.B) ([]preprocess.TaggedEvent, []retrainWindow, learner.Params) {
	b.Helper()
	p := learner.Params{WindowSec: 300}
	if retrainBench.events == nil {
		const systems = 36
		var events []preprocess.TaggedEvent
		for i := 0; i < systems; i++ {
			g, err := bgsim.NewGenerator(bgsim.ANL(2008 + uint64(i)).Scaled(24, 0.3))
			if err != nil {
				b.Fatal(err)
			}
			raw, err := g.Generate()
			if err != nil {
				b.Fatal(err)
			}
			filtered, _ := preprocess.Filter{Threshold: 300}.Apply(raw)
			events = append(events, preprocess.NewCategorizer(preprocess.NewCatalog()).Tag(filtered)...)
		}
		sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })

		const windowMs = 16 * 7 * 24 * 3600 * 1000 // 16-week training window
		const slideMs = 60 * 1000                  // one minute per retrain
		end := events[len(events)-1].Time
		var wins []retrainWindow
		for from := events[0].Time; from+windowMs <= end; from += slideMs {
			to := from + windowMs
			lo := sort.Search(len(events), func(i int) bool { return events[i].Time >= from })
			hi := sort.Search(len(events), func(i int) bool { return events[i].Time >= to })
			wins = append(wins, retrainWindow{from: from, to: to, lo: lo, hi: hi})
		}
		if len(wins) < 2 {
			b.Fatal("workload too short for a sliding retrain sequence")
		}
		retrainBench.events, retrainBench.wins = events, wins
	}
	return retrainBench.events, retrainBench.wins, p
}

// BenchmarkRetrainFull measures the batch path: every retrain re-mines
// the whole training window from scratch (no event-set cache, no
// sufficient statistics) — the O(window) cost incremental maintenance
// exists to avoid.
func BenchmarkRetrainFull(b *testing.B) {
	events, wins, p := benchRetrainWorkload(b)
	ml := meta.New()
	repo := meta.NewRepository()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wins[i%len(wins)]
		if _, err := engine.TrainStepPrepared(ml, repo, learner.Prepare(events[w.lo:w.hi]), p); err != nil {
			b.Fatal(err)
		}
	}
	w := wins[0]
	b.ReportMetric(float64(w.hi-w.lo), "window-events")
}

// BenchmarkRetrainIncremental measures the same retrain sequence with
// sufficient-statistics maintenance: each pass delta-applies the minute
// of events that entered/expired and re-emits rules from the maintained
// counters. The advance-ns/op metric isolates the delta-apply itself
// (the issue's sub-millisecond target); ns/op adds rule emission and the
// reviser pass, the irreducible floor shared with the batch path.
func BenchmarkRetrainIncremental(b *testing.B) {
	events, wins, p := benchRetrainWorkload(b)
	ml := meta.New()
	repo := meta.NewRepository()
	st := incr.New(meta.IncrConfig(ml, p))
	st.Advance(events, wins[0].from, wins[0].to, p) // cold build outside the timer
	var advanceNs int64
	idx := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx++
		if idx >= len(wins) {
			// Ran off the stream: rewind with a fresh cold build, untimed
			// (windows must only ever move forward).
			b.StopTimer()
			st = incr.New(meta.IncrConfig(ml, p))
			st.Advance(events, wins[0].from, wins[0].to, p)
			idx = 1
			b.StartTimer()
		}
		w := wins[idx]
		ta := time.Now()
		d := st.Advance(events, w.from, w.to, p)
		advanceNs += time.Since(ta).Nanoseconds()
		if d.Rebuild {
			b.Fatalf("delta-apply fell back to a rebuild: %s", d.Reason)
		}
		pre := learner.Prepare(events[w.lo:w.hi])
		st.Install(pre)
		if _, err := engine.TrainStepPrepared(ml, repo, pre, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(advanceNs)/float64(b.N), "advance-ns/op")
}

func BenchmarkRuleSwap(b *testing.B) {
	events := benchTagged(b)
	p := learner.Params{WindowSec: 300}
	report, err := meta.New().Train(events, p)
	if err != nil {
		b.Fatal(err)
	}
	var live atomic.Pointer[predictor.Predictor]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := predictor.New(report.Kept, p)
		pr.GlobalDedup = true
		pr.SeedLastFatal(int64(i))
		live.Store(pr)
	}
	b.ReportMetric(float64(len(report.Kept)), "rules")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).
// ---------------------------------------------------------------------------

// BenchmarkAblationAprioriDepth measures mining cost and rule yield as the
// antecedent cap grows: bodies beyond 3 items cost combinatorially more.
func BenchmarkAblationAprioriDepth(b *testing.B) {
	events := benchTagged(b)
	p := learner.Params{WindowSec: 300}
	for _, depth := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("maxBody=%d", depth), func(b *testing.B) {
			l := assoc.New()
			l.MaxBody = depth
			rules := 0
			for i := 0; i < b.N; i++ {
				rs, err := l.Learn(learner.Prepare(events), p)
				if err != nil {
					b.Fatal(err)
				}
				rules = len(rs)
			}
			b.ReportMetric(float64(rules), "rules")
		})
	}
}

// BenchmarkAblationMinROC sweeps the reviser threshold: lower values keep
// more rules (more recall, more false alarms), higher values prune harder.
func BenchmarkAblationMinROC(b *testing.B) {
	s := suite(b)
	sd := s.Systems[0]
	for _, minROC := range []float64{0.5, 0.7, 0.9} {
		b.Run(fmt.Sprintf("minROC=%.1f", minROC), func(b *testing.B) {
			var kept int
			var recall float64
			for i := 0; i < b.N; i++ {
				cfg := engine.Defaults()
				cfg.InitialTrainWeeks = sd.Cfg.Weeks / 2
				cfg.TrainWeeks = cfg.InitialTrainWeeks
				ml := meta.New()
				ml.Reviser = &reviser.Reviser{MinROC: minROC, KeepDistribution: true}
				cfg.Meta = ml
				res, err := engine.Run(sd.Tagged, sd.Cfg.Start, sd.Cfg.Weeks, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if n := len(res.Retrainings); n > 0 {
					kept = res.Retrainings[n-1].RepoSize
				}
				recall = res.Overall.Recall()
			}
			b.ReportMetric(float64(kept), "rules")
			b.ReportMetric(recall, "recall")
		})
	}
}

// BenchmarkAblationEnsembleOrder contrasts the full mixture-of-experts
// with each expert alone: the ensemble's recall should dominate.
func BenchmarkAblationEnsembleOrder(b *testing.B) {
	s := suite(b)
	sd := s.Systems[0]
	assocK, statK, distK := learner.Association, learner.Statistical, learner.Distribution
	variants := []struct {
		name string
		kind *learner.Kind
	}{
		{"ensemble", nil},
		{"assoc-only", &assocK},
		{"stat-only", &statK},
		{"dist-only", &distK},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var recall float64
			for i := 0; i < b.N; i++ {
				cfg := engine.Defaults()
				cfg.InitialTrainWeeks = sd.Cfg.Weeks / 2
				cfg.TrainWeeks = cfg.InitialTrainWeeks
				cfg.KindFilter = v.kind
				res, err := engine.Run(sd.Tagged, sd.Cfg.Start, sd.Cfg.Weeks, cfg)
				if err != nil {
					b.Fatal(err)
				}
				recall = res.Overall.Recall()
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

// BenchmarkAblationFilterThreshold measures preprocessing output volume
// across thresholds (the Table 4 knob) on a heavier raw log.
func BenchmarkAblationFilterThreshold(b *testing.B) {
	cfg := bgsim.ANL(1).Scaled(4, 0.2)
	g, _ := bgsim.NewGenerator(cfg)
	raw, err := g.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, th := range []int64{10, 60, 300} {
		b.Run(fmt.Sprintf("threshold=%ds", th), func(b *testing.B) {
			var kept int
			for i := 0; i < b.N; i++ {
				out, _ := preprocess.Filter{Threshold: th}.Apply(raw)
				kept = out.Len()
			}
			b.ReportMetric(float64(kept), "events")
		})
	}
}

// BenchmarkAblationBayesExpert measures the effect of adding the optional
// naive-Bayes indicator learner (paper future work: more base methods).
func BenchmarkAblationBayesExpert(b *testing.B) {
	s := suite(b)
	sd := s.Systems[0]
	for _, withBayes := range []bool{false, true} {
		name := "core3"
		if withBayes {
			name = "core3+bayes"
		}
		b.Run(name, func(b *testing.B) {
			var recall, precision float64
			for i := 0; i < b.N; i++ {
				cfg := engine.Defaults()
				cfg.InitialTrainWeeks = sd.Cfg.Weeks / 2
				cfg.TrainWeeks = cfg.InitialTrainWeeks
				ml := meta.New()
				if withBayes {
					ml.AddBayes()
				}
				cfg.Meta = ml
				res, err := engine.Run(sd.Tagged, sd.Cfg.Start, sd.Cfg.Weeks, cfg)
				if err != nil {
					b.Fatal(err)
				}
				recall = res.Overall.Recall()
				precision = res.Overall.Precision()
			}
			b.ReportMetric(recall, "recall")
			b.ReportMetric(precision, "precision")
		})
	}
}

// BenchmarkAblationAdaptiveWindow contrasts the fixed 300 s window with
// the adaptive tuner (paper future work: window self-tuning).
func BenchmarkAblationAdaptiveWindow(b *testing.B) {
	s := suite(b)
	sd := s.Systems[0]
	for _, adaptive := range []bool{false, true} {
		name := "fixed-300s"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var recall float64
			for i := 0; i < b.N; i++ {
				cfg := engine.Defaults()
				cfg.InitialTrainWeeks = sd.Cfg.Weeks / 2
				cfg.TrainWeeks = cfg.InitialTrainWeeks
				if adaptive {
					cfg.Tuner = engine.NewWindowTuner()
				}
				res, err := engine.Run(sd.Tagged, sd.Cfg.Start, sd.Cfg.Weeks, cfg)
				if err != nil {
					b.Fatal(err)
				}
				recall = res.Overall.Recall()
			}
			b.ReportMetric(recall, "recall")
		})
	}
}
