// Command preprocess runs the paper's data-preprocessing stage over a RAS
// log in the text codec: event categorization plus temporal/spatial
// compression. It reports the compression achieved and, with -sweep, the
// Table 4 threshold sweep; with -o it writes the filtered log.
//
// Usage:
//
//	preprocess [-in FILE] [-threshold 300] [-sweep] [-o FILE]
//
// Reads stdin when -in is omitted, pairing with bgsim-gen:
//
//	bgsim-gen -system anl -weeks 10 | preprocess -sweep
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/preprocess"
	"repro/internal/raslog"
)

func main() {
	in := flag.String("in", "", "input log file (default stdin)")
	threshold := flag.Int64("threshold", 300, "coalescing threshold in seconds")
	sweep := flag.Bool("sweep", false, "print the Table 4 threshold sweep")
	out := flag.String("o", "", "write the filtered log to this file")
	flag.Parse()

	if err := run(*in, *threshold, *sweep, *out); err != nil {
		fmt.Fprintln(os.Stderr, "preprocess:", err)
		os.Exit(1)
	}
}

func run(in string, threshold int64, sweep bool, out string) error {
	var src io.Reader = os.Stdin
	name := "stdin"
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
		name = in
	}
	log, err := raslog.ReadLog(src, name)
	if err != nil {
		return err
	}
	log.SortByTime()

	filtered, stats := preprocess.Filter{Threshold: threshold}.Apply(log)
	fmt.Printf("input events:      %d\n", stats.Input)
	fmt.Printf("after temporal:    %d\n", stats.AfterTemporal)
	fmt.Printf("after spatial:     %d\n", stats.AfterSpatial)
	fmt.Printf("compression:       %.2f%% (threshold %d s)\n",
		100*stats.CompressionRate(), threshold)

	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	tagged := z.Tag(filtered)
	fatal := preprocess.FatalCount(tagged)
	unknown := 0
	for _, e := range tagged {
		if preprocess.IsUnknown(e.Class) {
			unknown++
		}
	}
	fmt.Printf("fatal events:      %d\n", fatal)
	fmt.Printf("uncatalogued:      %d\n", unknown)

	if sweep {
		thresholds := []int64{0, 10, 60, 120, 200, 300, 400}
		rows := preprocess.ThresholdSweep(log, thresholds)
		fmt.Printf("\n%-10s", "Facility")
		for _, th := range thresholds {
			fmt.Printf(" %8ds", th)
		}
		fmt.Println()
		for _, fac := range raslog.Facilities() {
			fmt.Printf("%-10s", fac)
			for i := range thresholds {
				fmt.Printf(" %9d", rows[fac][i])
			}
			fmt.Println()
		}
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := raslog.WriteLog(f, filtered); err != nil {
			return err
		}
		fmt.Printf("filtered log:      %s\n", out)
	}
	return nil
}
