// Command bgsim-gen generates a synthetic Blue Gene/L RAS log in the text
// codec (one pipe-separated record per line, Table 1's eight fields).
//
// Usage:
//
//	bgsim-gen [-system anl|sdsc] [-seed N] [-weeks N] [-scale F] [-o FILE]
//
// With no -o the log streams to stdout, so it pipes directly into the
// preprocess tool:
//
//	bgsim-gen -system sdsc -weeks 30 | preprocess -sweep
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
)

func main() {
	system := flag.String("system", "sdsc", "preset: anl or sdsc")
	seed := flag.Uint64("seed", 1, "generator seed")
	weeks := flag.Int("weeks", 0, "override log length in weeks (0 = preset)")
	scale := flag.Float64("scale", -1, "override raw duplication scale (<0 = preset)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*system, *seed, *weeks, *scale, *out); err != nil {
		fmt.Fprintln(os.Stderr, "bgsim-gen:", err)
		os.Exit(1)
	}
}

func run(system string, seed uint64, weeks int, scale float64, out string) error {
	var cfg *repro.SimulatorConfig
	switch strings.ToLower(system) {
	case "anl":
		cfg = repro.ANL(seed)
	case "sdsc":
		cfg = repro.SDSC(seed)
	default:
		return fmt.Errorf("unknown system %q (want anl or sdsc)", system)
	}
	w, s := cfg.Weeks, cfg.RawScale
	if weeks > 0 {
		w = weeks
	}
	if scale >= 0 {
		s = scale
	}
	cfg = cfg.Scaled(w, s)

	var dst io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriterSize(dst, 1<<20)
	n, err := repro.GenerateTo(cfg, bw)
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bgsim-gen: %s, %d weeks, %d bytes\n", cfg.Name, cfg.Weeks, n)
	return nil
}
