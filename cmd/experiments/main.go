// Command experiments regenerates every table and figure of the paper's
// evaluation and writes them under an output directory: one rendered
// text file and one CSV per experiment, plus a combined report and a
// metrics.prom snapshot of the accumulated training metrics (per-learner
// durations, reviser time, rule churn — the live Table 5) in Prometheus
// text exposition.
//
// Usage:
//
//	experiments [-out results] [-seed 2008] [-quick] [-weeks N] [-scale F]
//	            [-parallelism N] [-cpuprofile F] [-memprofile F]
//
// The default is the full-scale ANL and SDSC presets (a few minutes and
// a few GB of transient memory for the raw ANL log); -quick runs a
// shortened, duplication-reduced configuration in seconds.
//
// -parallelism bounds the worker count everywhere (experiment grids,
// base learners, Apriori counting, reviser scoring): 0 (the default)
// means GOMAXPROCS, 1 forces the fully serial pipeline. Results are
// identical at any setting. -cpuprofile / -memprofile write pprof
// profiles of the run for performance work.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bgsim"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/obsv"
)

func main() {
	out := flag.String("out", "results", "output directory")
	seed := flag.Uint64("seed", 2008, "generator seed")
	quick := flag.Bool("quick", false, "run the reduced quick suite")
	weeks := flag.Int("weeks", 0, "override log length in weeks (0 = preset)")
	scale := flag.Float64("scale", -1, "override raw duplication scale (<0 = preset)")
	parallelism := flag.Int("parallelism", 0, "training/experiment workers (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(*out, *seed, *quick, *weeks, *scale, *parallelism); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

func run(out string, seed uint64, quick bool, weeks int, scale float64, parallelism int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	cfgs := []*bgsim.Config{bgsim.ANL(seed), bgsim.SDSC(seed)}
	if quick {
		for i, cfg := range cfgs {
			cfgs[i] = cfg.Scaled(24, 0.02)
		}
	}
	for i, cfg := range cfgs {
		w, s := cfg.Weeks, cfg.RawScale
		if weeks > 0 {
			w = weeks
		}
		if scale >= 0 {
			s = scale
		}
		cfgs[i] = cfg.Scaled(w, s)
	}

	start := time.Now()
	fmt.Printf("loading %d systems (seed %d)...\n", len(cfgs), seed)
	suite, err := exp.NewSuite(cfgs...)
	if err != nil {
		return err
	}
	suite.Parallelism = parallelism
	// Accumulate every training pass of the whole grid — the live Table 5
	// — and snapshot it to metrics.prom alongside the reports.
	metrics := obsv.NewRegistry()
	suite.Metrics = engine.NewTrainingMetrics(metrics)
	for _, sd := range suite.Systems {
		fmt.Printf("  %s: %d raw events -> %d filtered, %d fatals\n",
			sd.Cfg.Name, sd.RawCount, sd.Filtered.Len(), sd.Fatals)
	}

	combined, err := os.Create(filepath.Join(out, "all.txt"))
	if err != nil {
		return err
	}
	defer combined.Close()

	reports, err := suite.All()
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Printf("  %-8s %s\n", r.ID, r.Title)
		if err := r.Render(combined); err != nil {
			return err
		}
		txt, err := os.Create(filepath.Join(out, r.ID+".txt"))
		if err != nil {
			return err
		}
		if err := r.Render(txt); err != nil {
			txt.Close()
			return err
		}
		txt.Close()
		csvf, err := os.Create(filepath.Join(out, r.ID+".csv"))
		if err != nil {
			return err
		}
		if err := r.WriteCSV(csvf); err != nil {
			csvf.Close()
			return err
		}
		csvf.Close()
	}
	promf, err := os.Create(filepath.Join(out, "metrics.prom"))
	if err != nil {
		return err
	}
	if err := metrics.WritePrometheus(promf); err != nil {
		promf.Close()
		return err
	}
	if err := promf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d experiments to %s in %v\n",
		len(reports), out, time.Since(start).Round(time.Second))
	return nil
}
