// Command loadgen is the closed-loop load harness for cmd/serve: it
// measures where the service's capacity actually is, and how it behaves
// past it (DESIGN.md §13).
//
// It generates a bgsim feed once, then replays it against a live daemon
// at a sweep of offered event rates — each rate is a *time compression*
// of the feed's natural timeline, so weeks of stream time pass in
// seconds of wall time and retraining/prediction run on the stream's
// own clock. Replay is closed-loop: every tenant keeps exactly one
// batch in flight and the next send waits for the previous response, so
// offered load beyond capacity surfaces as latency and 429s rather than
// an unbounded client-side queue. Events are sent in order per tenant
// and the 429/503 line-resume contract is honored, so the harness can
// assert the no-drop/no-reorder invariant from the outside: everything
// it was told was accepted must come out sequenced.
//
// Usage:
//
//	loadgen [-addr http://localhost:8080] [-tenants 1] [-connections 1]
//	        [-rates 500,1000,2000,4000] [-overdrive] [-auto-extend]
//	        [-step-duration 5s] [-batch 256] [-seed 7] [-weeks 4]
//	        [-scale 0.05] [-storms] [-p99-target 50ms]
//	        [-allow-open-ended] [-out BENCH_8.json] [-ledger PATH]
//
// With -tenants > 1 the feed is replayed concurrently into that many
// fleet tenants (/t/load-NN/... — the daemon must run -fleet), which
// exercises per-tenant admission fairness under aggregate load.
// -connections N keeps N batches in flight per tenant: each connection
// claims the tenant's next batch-sized cursor range and sends it in
// order (resuming its own range on 429/503), so per-range ordering and
// the resume contract hold while the server's group commit sees real
// cross-request concurrency. Cross-range arrival order is delegated to
// the daemon's reorder stage — run it with an out-of-order tolerance
// scaled to the sweep's time compression (scripts/bench.sh does).
// -storms enables bgsim's log-storm shaping so the feed itself carries
// burst arrival structure. -overdrive appends a final step at twice the
// highest configured rate: the step that must produce bounded-latency
// 429s instead of collapse.
//
// Each step records client-side p50/p99 request latency, achieved
// events/s, 429/503 counts, and server-side deltas (sequenced,
// late-dropped, reorder-overflow, backpressure seconds, warnings), then
// waits for the pipeline to drain, measuring drain time and
// warning-emission lag. The sweep ends with the capacity verdict: the
// highest achieved rate whose p99 stayed at or under -p99-target,
// absolute and per core, written to -out as JSON — but only when the
// knee was actually found (some step breached the p99 target, so the
// verdict is a real knee, not the top of the sweep). -auto-extend keeps
// doubling the offered rate past the configured steps until the target
// is breached (bounded by a safety cap); without a breach the report
// carries "knee_found": false and loadgen refuses to state a capacity
// number unless -allow-open-ended is set.
//
// -ledger PATH additionally maintains a crash-recovery ledger, written
// atomically after every step: the accepted- and sequenced-event counts
// the server has acknowledged. scripts/smoke_restart.sh kills the
// daemon mid-sweep and asserts the recovered state covers the ledger
// (minus the WAL's bounded buffering slack).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/httpx"
	"repro/internal/raslog"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "serve daemon base URL")
	tenants := flag.Int("tenants", 1, "concurrent tenants (>1 needs a -fleet daemon)")
	connections := flag.Int("connections", 1, "in-flight batches per tenant")
	rates := flag.String("rates", "500,1000,2000,4000", "offered-load steps in events/sec, comma-separated")
	overdrive := flag.Bool("overdrive", false, "append a step at 2x the highest rate")
	autoExtend := flag.Bool("auto-extend", false, "keep doubling the rate past the sweep until p99 breaches the target")
	stepDur := flag.Duration("step-duration", 5*time.Second, "send time per step")
	batch := flag.Int("batch", 256, "events per POST /ingest/batch")
	seed := flag.Uint64("seed", 7, "feed generator seed")
	weeks := flag.Int("weeks", 4, "feed length in stream-time weeks")
	scale := flag.Float64("scale", 0.05, "feed raw duplication scale")
	storms := flag.Bool("storms", false, "shape the feed with bgsim log storms")
	p99Target := flag.Duration("p99-target", 50*time.Millisecond, "capacity verdict: highest rate with p99 <= this")
	allowOpenEnded := flag.Bool("allow-open-ended", false, "report a capacity number even when the sweep never breached the p99 target")
	out := flag.String("out", "BENCH_8.json", "write the capacity report here")
	ledger := flag.String("ledger", "", "maintain a crash-recovery ledger at this path")
	flag.Parse()

	steps, err := parseRates(*rates, *overdrive)
	if err != nil {
		log.Fatal("loadgen: ", err)
	}
	if err := run(opts{
		addr: *addr, tenants: *tenants, connections: *connections,
		steps: steps, autoExtend: *autoExtend, stepDur: *stepDur,
		batch: *batch, seed: *seed, weeks: *weeks, scale: *scale,
		storms: *storms, p99Target: *p99Target,
		allowOpenEnded: *allowOpenEnded, out: *out, ledger: *ledger,
	}); err != nil {
		log.Fatal("loadgen: ", err)
	}
}

type opts struct {
	addr           string
	tenants        int
	connections    int
	steps          []step
	autoExtend     bool
	stepDur        time.Duration
	batch          int
	seed           uint64
	weeks          int
	scale          float64
	storms         bool
	p99Target      time.Duration
	allowOpenEnded bool
	out            string
	ledger         string
}

type step struct {
	rate      float64
	overdrive bool
	auto      bool
}

// maxAutoExtend caps -auto-extend at this many doublings past the
// configured sweep: the closed loop can stop offering more (every
// connection already saturated) without the latency target breaking,
// and the harness must terminate with an honest "no knee" verdict
// rather than extend forever.
const maxAutoExtend = 12

func parseRates(s string, overdrive bool) ([]step, error) {
	var steps []step
	max := 0.0
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q in -rates", f)
		}
		if r > max {
			max = r
		}
		steps = append(steps, step{rate: r})
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("-rates is empty")
	}
	if overdrive {
		steps = append(steps, step{rate: 2 * max, overdrive: true})
	}
	return steps, nil
}

// feed is the pre-generated event sequence every tenant replays. A
// cursor past the end wraps into the next epoch: the same events with
// all timestamps shifted by the feed's span, so each tenant's stream
// time stays strictly monotone across wraps.
type feed struct {
	events []raslog.Event
	spanMs int64 // whole-second multiple > (last - first)
}

func newFeed(o opts) (*feed, error) {
	cfg := repro.SDSC(o.seed).Scaled(o.weeks, o.scale)
	if o.storms {
		cfg.LogStormsPerWeek = 14
		cfg.LogStormFactor = 20
		cfg.LogStormMinutes = 10
	}
	l, err := repro.Generate(cfg)
	if err != nil {
		return nil, err
	}
	if l.Len() == 0 {
		return nil, fmt.Errorf("generated feed is empty")
	}
	span := l.Events[l.Len()-1].Time - l.Events[0].Time
	return &feed{
		events: l.Events,
		// Round up to a whole second: the wire codec carries seconds, so a
		// sub-second offset would let an epoch's first event tie or precede
		// the previous epoch's last.
		spanMs: (span/1000 + 1) * 1000,
	}, nil
}

// batch encodes n events starting at the given global cursor.
func (f *feed) batch(cursor int64, n int) []byte {
	l := raslog.NewLog("load", n)
	size := int64(len(f.events))
	for k := int64(0); k < int64(n); k++ {
		c := cursor + k
		e := f.events[c%size]
		e.Time += (c / size) * f.spanMs
		l.Append(e)
	}
	var buf bytes.Buffer
	if _, err := raslog.WriteLog(&buf, l); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	return buf.Bytes()
}

// naturalEPS is the feed's own event rate; offered/natural is the time
// compression a step runs at.
func (f *feed) naturalEPS() float64 {
	return float64(len(f.events)) / (float64(f.spanMs) / 1000)
}

// Client-side mirrors of the daemon's JSON.
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Line     int    `json:"line"`
	Error    string `json:"error,omitempty"`
}

type serverStats struct {
	Ingested        int64 `json:"ingested"`
	Sequenced       int64 `json:"sequenced"`
	LateDropped     int64 `json:"late_dropped"`
	Rejected        int64 `json:"ingest_rejected"`
	ReorderOverflow int64 `json:"reorder_overflow"`
	WarningsTotal   int64 `json:"warnings_total"`
}

func (a serverStats) sub(b serverStats) serverStats {
	return serverStats{
		Ingested:        a.Ingested - b.Ingested,
		Sequenced:       a.Sequenced - b.Sequenced,
		LateDropped:     a.LateDropped - b.LateDropped,
		Rejected:        a.Rejected - b.Rejected,
		ReorderOverflow: a.ReorderOverflow - b.ReorderOverflow,
		WarningsTotal:   a.WarningsTotal - b.WarningsTotal,
	}
}

type stepResult struct {
	OfferedEPS      float64 `json:"offered_eps"`
	TimeCompression float64 `json:"time_compression"`
	Overdrive       bool    `json:"overdrive,omitempty"`
	AutoExtended    bool    `json:"auto_extended,omitempty"`
	DurationSec     float64 `json:"duration_sec"`
	Requests        int64   `json:"requests"`
	AcceptedEvents  int64   `json:"accepted_events"`
	AchievedEPS     float64 `json:"achieved_eps"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	MaxMs           float64 `json:"max_ms"`
	Rejected429     int64   `json:"rejected_429"`
	Unavailable503  int64   `json:"unavailable_503"`
	NetErrors       int64   `json:"net_errors"`
	Sequenced       int64   `json:"sequenced"`
	LateDropped     int64   `json:"late_dropped"`
	ReorderOverflow int64   `json:"reorder_overflow"`
	BackpressureSec float64 `json:"backpressure_seconds"`
	Warnings        int64   `json:"warnings"`
	DrainMs         int64   `json:"drain_ms"`
	WarningLagMs    int64   `json:"warning_lag_ms"`
}

type report struct {
	Target         string       `json:"target"`
	Tenants        int          `json:"tenants"`
	Connections    int          `json:"connections"`
	FeedSeed       uint64       `json:"feed_seed"`
	FeedWeeks      int          `json:"feed_weeks"`
	FeedScale      float64      `json:"feed_scale"`
	FeedStorms     bool         `json:"feed_storms"`
	FeedEvents     int          `json:"feed_events"`
	FeedNaturalEPS float64      `json:"feed_natural_eps"`
	BatchSize      int          `json:"batch_size"`
	Cores          int          `json:"cores"`
	P99TargetMs    float64      `json:"p99_target_ms"`
	Steps          []stepResult `json:"steps"`
	// KneeFound reports that some step breached the p99 target, so the
	// capacity verdict is a real knee and not merely the top of the
	// sweep. Without it the capacity fields are zero unless the run was
	// started with -allow-open-ended.
	KneeFound          bool    `json:"knee_found"`
	OpenEnded          bool    `json:"open_ended,omitempty"`
	CapacityEPS        float64 `json:"capacity_events_per_sec"`
	CapacityEPSPerCore float64 `json:"capacity_events_per_sec_per_core"`
}

// crashLedger is what loadgen knows the server acknowledged, for
// recovery assertions after a mid-sweep kill. Sequenced counts were
// read back from a drained pipeline, so all but the WAL's in-memory
// buffer (bounded by its flush interval) must survive a crash.
type crashLedger struct {
	StepsCompleted int   `json:"steps_completed"`
	Accepted       int64 `json:"accepted"`
	Sequenced      int64 `json:"sequenced"`
}

// statsSource is where runStep reads server-side counters from. The
// live implementation (httpStats) scrapes the daemon; tests substitute
// a synthetic source to pin the step-boundary accounting.
type statsSource interface {
	totals() (serverStats, error)
	backpressure() (float64, error)
}

type runner struct {
	o       opts
	feed    *feed
	client  *http.Client
	stats   statsSource
	curMu   []sync.Mutex // per-tenant cursor claim locks
	cursors []int64      // per-tenant global feed cursor, persists across steps
	ledger  crashLedger
}

// claim reserves the next n-event cursor range for tenant ti and
// returns its start. Connections of the same tenant partition the feed
// into disjoint, gap-free ranges this way.
func (r *runner) claim(ti, n int) int64 {
	r.curMu[ti].Lock()
	c := r.cursors[ti]
	r.cursors[ti] += int64(n)
	r.curMu[ti].Unlock()
	return c
}

// tenantURL is the route prefix for tenant i: unprefixed when running
// single-tenant (works against plain and fleet daemons alike), a fleet
// /t/load-NN prefix otherwise.
func (r *runner) tenantURL(i int) string {
	if r.o.tenants == 1 {
		return r.o.addr
	}
	return fmt.Sprintf("%s/t/load-%02d", r.o.addr, i)
}

// capacityVerdict is the sweep's conclusion: the highest achieved rate
// whose p99 met the target, and whether the knee was actually found —
// i.e. some step breached the target, proving the verdict is a real
// ceiling and not just the top of the sweep.
func capacityVerdict(steps []stepResult, targetMs float64) (eps float64, kneeFound bool) {
	for _, s := range steps {
		if s.P99Ms > targetMs {
			kneeFound = true
		} else if s.AchievedEPS > eps {
			eps = s.AchievedEPS
		}
	}
	return eps, kneeFound
}

func run(o opts) error {
	if o.tenants < 1 {
		return fmt.Errorf("-tenants must be >= 1")
	}
	if o.connections < 1 {
		return fmt.Errorf("-connections must be >= 1")
	}
	if _, err := http.Get(o.addr + "/healthz"); err != nil {
		return fmt.Errorf("daemon not reachable (start ./cmd/serve first): %w", err)
	}
	f, err := newFeed(o)
	if err != nil {
		return err
	}
	// The default transport keeps only two idle connections per host;
	// with -connections worth of concurrent POSTs that means constant
	// reconnects whose handshakes would pollute the latency histogram.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = o.tenants*o.connections + 4
	r := &runner{
		o: o, feed: f,
		client:  &http.Client{Timeout: 2 * time.Minute, Transport: tr},
		curMu:   make([]sync.Mutex, o.tenants),
		cursors: make([]int64, o.tenants),
	}
	r.stats = &httpStats{r: r}
	fmt.Printf("loadgen: feed %d events (natural %.0f eps), %d tenant(s) x %d connection(s), %d-event batches\n",
		len(f.events), f.naturalEPS(), o.tenants, o.connections, o.batch)

	rep := report{
		Target: o.addr, Tenants: o.tenants, Connections: o.connections,
		FeedSeed: o.seed, FeedWeeks: o.weeks, FeedScale: o.scale,
		FeedStorms: o.storms, FeedEvents: len(f.events),
		FeedNaturalEPS: f.naturalEPS(), BatchSize: o.batch,
		Cores:       runtime.GOMAXPROCS(0),
		P99TargetMs: ms(o.p99Target),
	}
	steps := r.o.steps
	breached := false
	for i := 0; i < len(steps); i++ {
		st := steps[i]
		res, err := r.runStep(st)
		if err != nil {
			return fmt.Errorf("step %d (%.0f eps): %w", i+1, st.rate, err)
		}
		rep.Steps = append(rep.Steps, res)
		mark := ""
		if st.overdrive {
			mark = " [overdrive]"
		}
		if st.auto {
			mark = " [auto]"
		}
		fmt.Printf("loadgen: %7.0f eps offered%s: %7.0f achieved | p50 %6.1fms p99 %6.1fms | 429s %d | drain %dms | warn lag %dms\n",
			res.OfferedEPS, mark, res.AchievedEPS, res.P50Ms, res.P99Ms,
			res.Rejected429, res.DrainMs, res.WarningLagMs)
		if o.ledger != "" {
			r.ledger.StepsCompleted = i + 1
			if err := writeJSONAtomic(o.ledger, r.ledger); err != nil {
				return fmt.Errorf("ledger: %w", err)
			}
		}
		if res.P99Ms > rep.P99TargetMs {
			breached = true
		}
		// Auto-extension: the configured sweep topped out under the
		// latency target, so the knee is still ahead — keep doubling.
		if o.autoExtend && !breached && i == len(steps)-1 &&
			len(steps) < len(r.o.steps)+maxAutoExtend {
			steps = append(steps, step{rate: 2 * st.rate, auto: true})
		}
	}

	rep.CapacityEPS, rep.KneeFound = capacityVerdict(rep.Steps, rep.P99TargetMs)
	if !rep.KneeFound && !o.allowOpenEnded {
		// No step ever breached the target: the "capacity" would just be
		// the top of the sweep. Refuse the number; keep the curve.
		rep.CapacityEPS = 0
		if err := writeJSONAtomic(o.out, rep); err != nil {
			return err
		}
		return fmt.Errorf("sweep never breached the p99 target (%.0fms): no knee found — raise -rates, use -auto-extend, or pass -allow-open-ended (curve written to %s)",
			rep.P99TargetMs, o.out)
	}
	rep.OpenEnded = !rep.KneeFound
	rep.CapacityEPSPerCore = rep.CapacityEPS / float64(rep.Cores)
	if err := writeJSONAtomic(o.out, rep); err != nil {
		return err
	}
	caveat := ""
	if rep.OpenEnded {
		caveat = " [open-ended: p99 target never breached]"
	}
	fmt.Printf("loadgen: capacity %.0f events/s (%.0f per core) at p99 <= %.0fms%s — wrote %s\n",
		rep.CapacityEPS, rep.CapacityEPSPerCore, rep.P99TargetMs, caveat, o.out)
	return nil
}

// workerResult is one tenant's tally for one step.
type workerResult struct {
	lat            []time.Duration
	requests       int64
	accepted       int64
	rejected429    int64
	unavailable503 int64
	netErrs        int64
	err            error
}

// attributeSequenced converts a raw cross-boundary sequenced delta into
// this step's own count. Events accepted in an earlier step can still
// sit in the reorder buffer at the step boundary and only sequence once
// this step's traffic advances the watermark — the BENCH_8 bleed, where
// step 3 reported 8196 sequenced against 8192 accepted. Releases are
// time-ordered, so that carry drains ahead of this step's own events:
// subtract it, then clamp to what this step accepted, which no honest
// per-step delta can exceed.
func attributeSequenced(rawDelta, outstandingBefore, accepted int64) int64 {
	d := rawDelta - outstandingBefore
	if d < 0 {
		d = 0
	}
	if d > accepted {
		d = accepted
	}
	return d
}

func (r *runner) runStep(st step) (stepResult, error) {
	before, err := r.stats.totals()
	if err != nil {
		return stepResult{}, err
	}
	bpBefore, err := r.stats.backpressure()
	if err != nil {
		return stepResult{}, err
	}
	// Accepted-but-unsequenced events carried in from earlier steps
	// (reorder-buffered at the snapshot): this step's sequenced delta
	// must not claim them.
	outstanding := r.ledger.Accepted - before.Sequenced - before.LateDropped
	if outstanding < 0 {
		outstanding = 0 // warm daemon with counters loadgen never fed
	}

	workers := r.o.tenants * r.o.connections
	perWorker := st.rate / float64(workers)
	deadline := time.Now().Add(r.o.stepDur)
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for ti := 0; ti < r.o.tenants; ti++ {
		for ci := 0; ci < r.o.connections; ci++ {
			wg.Add(1)
			go func(ti, w int) {
				defer wg.Done()
				r.work(ti, perWorker, deadline, &results[w])
			}(ti, ti*r.o.connections+ci)
		}
	}
	wg.Wait()
	sendDur := time.Since(t0)

	var agg workerResult
	for i := range results {
		if results[i].err != nil {
			return stepResult{}, results[i].err
		}
		agg.lat = append(agg.lat, results[i].lat...)
		agg.requests += results[i].requests
		agg.accepted += results[i].accepted
		agg.rejected429 += results[i].rejected429
		agg.unavailable503 += results[i].unavailable503
		agg.netErrs += results[i].netErrs
	}
	sort.Slice(agg.lat, func(i, j int) bool { return agg.lat[i] < agg.lat[j] })

	drainMs, warnLagMs, after, err := r.settle(before)
	if err != nil {
		return stepResult{}, err
	}
	bpAfter, err := r.stats.backpressure()
	if err != nil {
		return stepResult{}, err
	}
	d := after.sub(before)
	d.Sequenced = attributeSequenced(d.Sequenced, outstanding, agg.accepted)
	r.ledger.Accepted += agg.accepted
	r.ledger.Sequenced = after.Sequenced

	res := stepResult{
		OfferedEPS:      st.rate,
		TimeCompression: st.rate / r.feed.naturalEPS(),
		Overdrive:       st.overdrive,
		DurationSec:     sendDur.Seconds(),
		Requests:        agg.requests,
		AcceptedEvents:  agg.accepted,
		AchievedEPS:     float64(agg.accepted) / sendDur.Seconds(),
		P50Ms:           ms(percentile(agg.lat, 0.50)),
		P99Ms:           ms(percentile(agg.lat, 0.99)),
		MaxMs:           ms(percentile(agg.lat, 1)),
		Rejected429:     agg.rejected429,
		Unavailable503:  agg.unavailable503,
		NetErrors:       agg.netErrs,
		Sequenced:       d.Sequenced,
		LateDropped:     d.LateDropped,
		ReorderOverflow: d.ReorderOverflow,
		BackpressureSec: bpAfter - bpBefore,
		Warnings:        d.WarningsTotal,
		DrainMs:         drainMs,
		WarningLagMs:    warnLagMs,
	}
	// The closed-loop no-loss check: everything acknowledged accepted must
	// be ingested server-side (sequencing can legitimately trail by the
	// reorder buffer's contents, which drain on the next step or close).
	if d.Ingested < agg.accepted {
		return res, fmt.Errorf("server ingested %d of %d accepted events: admitted events were lost",
			d.Ingested, agg.accepted)
	}
	return res, nil
}

// work replays claimed feed ranges into one tenant connection until
// deadline, paced to this connection's share of the offered rate. Each
// claimed range is sent in order and resent from its own first
// unaccepted line on 429/503, so per-range ordering and the resume
// contract hold exactly as in the single-connection harness; with
// -connections > 1 several ranges are in flight at once and their
// arrival interleaving is the server reorder stage's job. A range the
// deadline cuts short is abandoned unsent — never counted accepted.
func (r *runner) work(ti int, rate float64, deadline time.Time, res *workerResult) {
	base := r.tenantURL(ti)
	interval := time.Duration(float64(r.o.batch) / rate * float64(time.Second))
	next := time.Now()
	for time.Now().Before(deadline) {
		start := r.claim(ti, r.o.batch)
		sent := 0
		for sent < r.o.batch && time.Now().Before(deadline) {
			body := r.feed.batch(start+int64(sent), r.o.batch-sent)
			t0 := time.Now()
			resp, err := r.client.Post(base+"/ingest/batch", "text/plain", bytes.NewReader(body))
			lat := time.Since(t0)
			if err != nil {
				res.netErrs++
				time.Sleep(100 * time.Millisecond)
				continue
			}
			var ir ingestResponse
			derr := json.NewDecoder(resp.Body).Decode(&ir)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if derr != nil {
				res.netErrs++
				continue
			}
			res.lat = append(res.lat, lat)
			res.requests++
			res.accepted += int64(ir.Accepted)
			sent += ir.Accepted
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				res.rejected429++
				time.Sleep(retryAfter(resp))
			case http.StatusServiceUnavailable:
				res.unavailable503++
				time.Sleep(retryAfter(resp))
			default:
				res.err = fmt.Errorf("tenant %d: ingest HTTP %d: %s (fleet daemon required for -tenants > 1?)",
					ti, resp.StatusCode, ir.Error)
				return
			}
		}
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		} else {
			next = time.Now() // saturated: don't accumulate debt
		}
	}
}

// retryAfter maps a throttled response's Retry-After hint (delta-seconds
// or HTTP-date) to a sleep. A floor keeps a zero or missing hint from
// hot-looping the worker; the cap keeps a bogus hint from stalling it.
func retryAfter(resp *http.Response) time.Duration {
	d := httpx.RetryAfter(resp.Header, 250*time.Millisecond, 5*time.Second)
	if d < 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

// settle polls aggregate stats after sending stops until sequencing and
// warning emission both go quiet, returning how long each kept moving —
// the pipeline drain time and the warning-emission lag.
func (r *runner) settle(before serverStats) (drainMs, warnLagMs int64, final serverStats, err error) {
	t0 := time.Now()
	prev, err := r.stats.totals()
	if err != nil {
		return 0, 0, prev, err
	}
	if prev.Sequenced != before.Sequenced {
		drainMs = int64(time.Since(t0) / time.Millisecond)
	}
	if prev.WarningsTotal != before.WarningsTotal {
		warnLagMs = int64(time.Since(t0) / time.Millisecond)
	}
	deadline := t0.Add(15 * time.Second)
	stable := 0
	for time.Now().Before(deadline) && stable < 4 {
		time.Sleep(50 * time.Millisecond)
		cur, err := r.stats.totals()
		if err != nil {
			return drainMs, warnLagMs, prev, err
		}
		moved := false
		if cur.Sequenced != prev.Sequenced {
			drainMs = int64(time.Since(t0) / time.Millisecond)
			moved = true
		}
		if cur.WarningsTotal != prev.WarningsTotal {
			warnLagMs = int64(time.Since(t0) / time.Millisecond)
			moved = true
		}
		if moved {
			stable = 0
		} else {
			stable++
		}
		prev = cur
	}
	return drainMs, warnLagMs, prev, nil
}

// httpStats is the live statsSource: it scrapes the daemon's /stats and
// /metrics over the runner's client.
type httpStats struct {
	r *runner
}

// totals aggregates /stats across every tenant this run feeds. A 404
// means the tenant does not exist yet (nothing POSTed) — zero counts.
func (h *httpStats) totals() (serverStats, error) {
	r := h.r
	var agg serverStats
	for i := 0; i < r.o.tenants; i++ {
		resp, err := r.client.Get(r.tenantURL(i) + "/stats")
		if err != nil {
			return agg, err
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		var st serverStats
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return agg, fmt.Errorf("tenant %d stats: %w", i, err)
		}
		agg.Ingested += st.Ingested
		agg.Sequenced += st.Sequenced
		agg.LateDropped += st.LateDropped
		agg.Rejected += st.Rejected
		agg.ReorderOverflow += st.ReorderOverflow
		agg.WarningsTotal += st.WarningsTotal
	}
	return agg, nil
}

// backpressure scrapes the daemon's /metrics and sums every
// stream_ingest_backpressure_seconds_sum series (one per tenant under
// -fleet, unlabeled otherwise): total wall time ingest calls spent
// waiting for a pipeline slot.
func (h *httpStats) backpressure() (float64, error) {
	r := h.r
	resp, err := r.client.Get(r.o.addr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	const name = "stream_ingest_backpressure_seconds_sum"
	total := 0.0
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		total += v
	}
	return total, nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * q)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// writeJSONAtomic writes v to path via a same-directory temp file and
// rename, so a reader (or a kill) never sees a torn file.
func writeJSONAtomic(path string, v interface{}) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
