package main

import (
	"bytes"
	"testing"

	"repro/internal/raslog"
)

// TestFeedBatchWrapsMonotone pins the epoch-wrap contract: a tenant's
// cursor walking straight through several copies of the feed must see
// strictly ordered batches — wire-decoded timestamps never go backwards
// across the wrap, or the replayed stream would self-inflict late
// drops.
func TestFeedBatchWrapsMonotone(t *testing.T) {
	f, err := newFeed(opts{seed: 3, weeks: 1, scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if f.spanMs%1000 != 0 {
		t.Fatalf("spanMs %d is not second-aligned", f.spanMs)
	}
	const batch = 100
	last := int64(-1 << 62)
	n := int64(len(f.events))
	for cursor := int64(0); cursor < 2*n+3*batch; cursor += batch {
		l, err := raslog.ReadLog(bytes.NewReader(f.batch(cursor, batch)), "wrap")
		if err != nil {
			t.Fatalf("cursor %d: batch does not decode: %v", cursor, err)
		}
		if l.Len() != batch {
			t.Fatalf("cursor %d: %d events, want %d", cursor, l.Len(), batch)
		}
		for _, e := range l.Events {
			if e.Time < last {
				t.Fatalf("cursor %d: time %d after %d — wrap broke ordering", cursor, e.Time, last)
			}
			last = e.Time
		}
	}
}

func TestParseRates(t *testing.T) {
	steps, err := parseRates("500, 1000,2000", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 {
		t.Fatalf("%d steps, want 4 (3 rates + overdrive)", len(steps))
	}
	od := steps[3]
	if !od.overdrive || od.rate != 4000 {
		t.Fatalf("overdrive step = %+v, want 2x the max rate", od)
	}
	for _, bad := range []string{"", "0", "-5", "abc", "100,,200"} {
		if _, err := parseRates(bad, false); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}
