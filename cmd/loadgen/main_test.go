package main

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/raslog"
)

// TestFeedBatchWrapsMonotone pins the epoch-wrap contract: a tenant's
// cursor walking straight through several copies of the feed must see
// strictly ordered batches — wire-decoded timestamps never go backwards
// across the wrap, or the replayed stream would self-inflict late
// drops.
func TestFeedBatchWrapsMonotone(t *testing.T) {
	f, err := newFeed(opts{seed: 3, weeks: 1, scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if f.spanMs%1000 != 0 {
		t.Fatalf("spanMs %d is not second-aligned", f.spanMs)
	}
	const batch = 100
	last := int64(-1 << 62)
	n := int64(len(f.events))
	for cursor := int64(0); cursor < 2*n+3*batch; cursor += batch {
		l, err := raslog.ReadLog(bytes.NewReader(f.batch(cursor, batch)), "wrap")
		if err != nil {
			t.Fatalf("cursor %d: batch does not decode: %v", cursor, err)
		}
		if l.Len() != batch {
			t.Fatalf("cursor %d: %d events, want %d", cursor, l.Len(), batch)
		}
		for _, e := range l.Events {
			if e.Time < last {
				t.Fatalf("cursor %d: time %d after %d — wrap broke ordering", cursor, e.Time, last)
			}
			last = e.Time
		}
	}
}

func TestParseRates(t *testing.T) {
	steps, err := parseRates("500, 1000,2000", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 {
		t.Fatalf("%d steps, want 4 (3 rates + overdrive)", len(steps))
	}
	od := steps[3]
	if !od.overdrive || od.rate != 4000 {
		t.Fatalf("overdrive step = %+v, want 2x the max rate", od)
	}
	for _, bad := range []string{"", "0", "-5", "abc", "100,,200"} {
		if _, err := parseRates(bad, false); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

// syntheticStats is a scripted statsSource: each call to totals pops
// the next counter snapshot, so a test can replay an exact server-side
// counter timeline without a daemon.
type syntheticStats struct {
	snaps []serverStats
	i     int
}

func (s *syntheticStats) totals() (serverStats, error) {
	if s.i < len(s.snaps)-1 {
		st := s.snaps[s.i]
		s.i++
		return st, nil
	}
	return s.snaps[len(s.snaps)-1], nil
}

func (s *syntheticStats) backpressure() (float64, error) { return 0, nil }

// TestStepDeltaNeverExceedsAccepted is the regression test for the
// BENCH_8 accounting bleed: step 3 reported sequenced 8196 against 8192
// accepted, because events accepted in step 2 were still in the reorder
// buffer at the step boundary and sequenced during step 3. Replaying
// the exact BENCH_8 counter timeline through a synthetic stats source,
// the attributed per-step sequenced delta must never exceed that step's
// accepted count, and the attribution must conserve events overall.
func TestStepDeltaNeverExceedsAccepted(t *testing.T) {
	// Cumulative server counters at each step boundary (start of sweep,
	// then after each step's drain), from BENCH_8.json: the pipeline
	// holds back a few events per step and releases them a step late.
	bounds := []serverStats{
		{},
		{Ingested: 2048, Sequenced: 2043},
		{Ingested: 6144, Sequenced: 6136},
		{Ingested: 14336, Sequenced: 14332},
	}
	accepted := []int64{2048, 4096, 8192}

	src := &syntheticStats{snaps: bounds}
	r := &runner{stats: src}
	var attributed, carry int64
	for i, acc := range accepted {
		before, err := r.stats.totals()
		if err != nil {
			t.Fatal(err)
		}
		outstanding := r.ledger.Accepted - before.Sequenced - before.LateDropped
		if outstanding < 0 {
			outstanding = 0
		}
		after := bounds[i+1]
		raw := after.Sequenced - before.Sequenced
		got := attributeSequenced(raw, outstanding, acc)
		if got > acc {
			t.Fatalf("step %d: attributed sequenced %d > accepted %d — the bleed is back", i+1, got, acc)
		}
		if got < 0 {
			t.Fatalf("step %d: attributed sequenced %d < 0", i+1, got)
		}
		attributed += got
		carry += raw - got
		r.ledger.Accepted += acc
	}
	// Conservation: own + carried-over + still-buffered == everything
	// the sweep accepted.
	final := bounds[len(bounds)-1]
	buffered := r.ledger.Accepted - final.Sequenced - final.LateDropped
	if attributed+carry+buffered != r.ledger.Accepted {
		t.Fatalf("attribution loses events: own %d + carry %d + buffered %d != accepted %d",
			attributed, carry, buffered, r.ledger.Accepted)
	}
}

func TestAttributeSequencedClamps(t *testing.T) {
	cases := []struct {
		raw, outstanding, accepted, want int64
	}{
		{8196, 8, 8192, 8188}, // the BENCH_8 step-3 shape
		{2043, 0, 2048, 2043}, // clean step: unchanged
		{9000, 0, 8192, 8192}, // over-attribution clamps to accepted
		{3, 10, 8192, 0},      // carry bigger than the delta
		{0, 0, 0, 0},          // idle step
	}
	for _, c := range cases {
		if got := attributeSequenced(c.raw, c.outstanding, c.accepted); got != c.want {
			t.Errorf("attributeSequenced(%d, %d, %d) = %d, want %d",
				c.raw, c.outstanding, c.accepted, got, c.want)
		}
	}
}

// TestCapacityVerdictKnee pins the open-ended-sweep fix: a sweep whose
// every step met the p99 target has no knee — the verdict must say so
// instead of silently reporting the top of the sweep as capacity.
func TestCapacityVerdictKnee(t *testing.T) {
	under := []stepResult{
		{AchievedEPS: 1000, P99Ms: 5},
		{AchievedEPS: 2000, P99Ms: 6},
		{AchievedEPS: 16000, P99Ms: 9},
	}
	if eps, knee := capacityVerdict(under, 50); knee {
		t.Fatalf("knee_found = true for a sweep that never breached the target (eps %.0f)", eps)
	} else if eps != 16000 {
		t.Fatalf("open-ended best = %.0f, want 16000", eps)
	}

	breached := append(append([]stepResult{}, under...), stepResult{AchievedEPS: 21000, P99Ms: 180})
	eps, knee := capacityVerdict(breached, 50)
	if !knee {
		t.Fatal("knee_found = false though the last step breached the target")
	}
	if eps != 16000 {
		t.Fatalf("capacity = %.0f, want 16000 (highest step under the target)", eps)
	}
	// The breaching step's achieved rate must never be the verdict, even
	// when it is the highest number in the sweep.
	if eps >= 21000 {
		t.Fatalf("capacity %.0f took the over-target step", eps)
	}
}

// TestClaimPartitionsCursor: concurrent connections of one tenant must
// carve the feed into disjoint, gap-free ranges.
func TestClaimPartitionsCursor(t *testing.T) {
	r := &runner{
		o:       opts{tenants: 1, connections: 8, batch: 64},
		curMu:   make([]sync.Mutex, 1),
		cursors: make([]int64, 1),
	}
	const perConn = 50
	starts := make(chan int64, 8*perConn)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perConn; i++ {
				starts <- r.claim(0, r.o.batch)
			}
		}()
	}
	wg.Wait()
	close(starts)
	seen := make(map[int64]bool)
	for s := range starts {
		if s%int64(r.o.batch) != 0 {
			t.Fatalf("claim start %d not batch-aligned", s)
		}
		if seen[s] {
			t.Fatalf("range at %d claimed twice", s)
		}
		seen[s] = true
	}
	if len(seen) != 8*perConn {
		t.Fatalf("%d distinct ranges, want %d", len(seen), 8*perConn)
	}
	if r.cursors[0] != int64(8*perConn*r.o.batch) {
		t.Fatalf("cursor ended at %d, want %d (gap-free)", r.cursors[0], 8*perConn*r.o.batch)
	}
}
