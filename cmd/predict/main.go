// Command predict runs the dynamic meta-learning framework over a RAS log
// (text codec) and prints weekly precision/recall plus the retraining
// record.
//
// Usage:
//
//	predict [-in FILE] [-window 300] [-retrain 4] [-train 26] [-policy sliding|whole|static]
//
// Reads stdin when -in is omitted:
//
//	bgsim-gen -system sdsc -scale 0.05 | predict -train 26
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	in := flag.String("in", "", "input raw log file (default stdin)")
	window := flag.Int64("window", 300, "prediction window W_P in seconds")
	retrain := flag.Int("retrain", 4, "retraining window W_R in weeks")
	train := flag.Int("train", 26, "initial/sliding training set in weeks")
	policy := flag.String("policy", "sliding", "training policy: sliding, whole or static")
	verbose := flag.Bool("v", false, "print every week instead of a summary")
	flag.Parse()

	if err := run(*in, *window, *retrain, *train, *policy, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
}

func run(in string, window int64, retrain, train int, policy string, verbose bool) error {
	var src io.Reader = os.Stdin
	name := "stdin"
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
		name = in
	}
	log, err := repro.ReadLog(src, name)
	if err != nil {
		return err
	}
	log.SortByTime()
	events, stats := repro.Preprocess(log, 300)
	fmt.Printf("log: %d raw events, %d after filtering (%.1f%% compression)\n",
		stats.Input, stats.AfterSpatial, 100*stats.CompressionRate())

	opts := repro.DefaultOptions()
	opts.Params.WindowSec = window
	opts.RetrainWeeks = retrain
	opts.InitialTrainWeeks = train
	opts.TrainWeeks = train
	switch policy {
	case "sliding":
		opts.Policy = repro.SlidingPolicy
	case "whole":
		opts.Policy = repro.WholePolicy
	case "static":
		opts.Policy = repro.StaticPolicy
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	weeks := log.Weeks()
	res, err := repro.Run(events, log.Start(), weeks, opts)
	if err != nil {
		return err
	}

	fmt.Printf("test span: weeks %d-%d, %d fatals, %d warnings\n",
		res.TestFrom, weeks-1, len(res.FatalTimes), len(res.Warnings))
	fmt.Printf("overall: %s\n", res.Overall)
	if verbose {
		fmt.Printf("\n%-6s %-10s %-10s %-6s %-6s\n", "week", "precision", "recall", "TP", "FP")
		for _, wp := range res.Weekly {
			fmt.Printf("%-6d %-10.3f %-10.3f %-6d %-6d\n",
				wp.Week, wp.Precision(), wp.Recall(), wp.TP, wp.FP)
		}
	}
	fmt.Printf("\nretrainings: %d (rule matching %v total)\n",
		len(res.Retrainings), res.MatchDuration)
	for _, rt := range res.Retrainings {
		fmt.Printf("  week %3d: %5d train events, repo %3d rules "+
			"(unchanged %d, +%d, -%d meta, -%d reviser) in %v\n",
			rt.Week, rt.TrainEvents, rt.RepoSize, rt.Churn.Unchanged,
			rt.Churn.Added, rt.Churn.RemovedByMeta, rt.Churn.RemovedByReviser, rt.Total)
	}
	return nil
}
