// Command predict runs the dynamic meta-learning framework over a RAS log
// (text codec) and prints weekly precision/recall plus the retraining
// record.
//
// Usage:
//
//	predict [-in FILE] [-filter 300] [-window 300] [-retrain 4] [-train 26]
//	        [-policy sliding|whole|static] [-sort]
//
// Reads stdin when -in is omitted:
//
//	bgsim-gen -system sdsc -scale 0.05 | predict -train 26
//
// The input is decoded line by line and preprocessed incrementally, so
// only the filtered events (~2% of the raw log at the default threshold)
// are ever resident in memory. That requires a time-sorted input — which
// bgsim-gen and the production logs produce; pass -sort to buffer and
// sort an unsorted log first.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

func main() {
	in := flag.String("in", "", "input raw log file (default stdin)")
	filter := flag.Int64("filter", 300, "preprocessing filter threshold in seconds (0 disables)")
	window := flag.Int64("window", 300, "prediction window W_P in seconds")
	retrain := flag.Int("retrain", 4, "retraining window W_R in weeks")
	train := flag.Int("train", 26, "initial/sliding training set in weeks")
	policy := flag.String("policy", "sliding", "training policy: sliding, whole or static")
	sortFirst := flag.Bool("sort", false, "buffer the whole log and sort it before preprocessing")
	verbose := flag.Bool("v", false, "print every week instead of a summary")
	flag.Parse()

	if err := run(*in, *filter, *window, *retrain, *train, *policy, *sortFirst, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
}

// load streams the input through the incremental preprocessor, returning
// the filtered tagged events plus the raw log's start time and week span.
func load(src io.Reader, filter int64, sortFirst bool) ([]repro.TaggedEvent, repro.FilterStats, int64, int, error) {
	if sortFirst {
		log, err := raslog.ReadLog(src, "input")
		if err != nil {
			return nil, repro.FilterStats{}, 0, 0, err
		}
		log.SortByTime()
		events, stats := repro.Preprocess(log, filter)
		return events, stats, log.Start(), log.Weeks(), nil
	}

	inc := preprocess.Filter{Threshold: filter}.Incremental()
	zer := preprocess.NewCategorizer(preprocess.NewCatalog())
	var (
		events      []repro.TaggedEvent
		first, last int64
		seen        bool
	)
	err := raslog.ScanLog(src, func(e repro.Event) error {
		if !seen {
			first, seen = e.Time, true
		} else if e.Time < last {
			return fmt.Errorf("input not time-sorted at record %d (run with -sort)", e.RecordID)
		}
		last = e.Time
		if inc.Observe(e) {
			class, fatal := zer.Categorize(e)
			events = append(events, repro.TaggedEvent{Event: e, Class: class, Fatal: fatal})
		}
		return nil
	})
	if err != nil {
		return nil, repro.FilterStats{}, 0, 0, err
	}
	weeks := 0
	if seen {
		weeks = int((last-first)/raslog.MillisPerWeek) + 1
	}
	return events, inc.Stats(), first, weeks, nil
}

func run(in string, filter, window int64, retrain, train int, policy string, sortFirst, verbose bool) error {
	var src io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	events, stats, start, weeks, err := load(src, filter, sortFirst)
	if err != nil {
		return err
	}
	fmt.Printf("log: %d raw events, %d after filtering (%.1f%% compression)\n",
		stats.Input, stats.AfterSpatial, 100*stats.CompressionRate())

	opts := repro.DefaultOptions()
	opts.Params.WindowSec = window
	opts.RetrainWeeks = retrain
	opts.InitialTrainWeeks = train
	opts.TrainWeeks = train
	switch policy {
	case "sliding":
		opts.Policy = repro.SlidingPolicy
	case "whole":
		opts.Policy = repro.WholePolicy
	case "static":
		opts.Policy = repro.StaticPolicy
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	res, err := repro.Run(events, start, weeks, opts)
	if err != nil {
		return err
	}

	fmt.Printf("test span: weeks %d-%d, %d fatals, %d warnings\n",
		res.TestFrom, weeks-1, len(res.FatalTimes), len(res.Warnings))
	fmt.Printf("overall: %s\n", res.Overall)
	if verbose {
		fmt.Printf("\n%-6s %-10s %-10s %-6s %-6s\n", "week", "precision", "recall", "TP", "FP")
		for _, wp := range res.Weekly {
			fmt.Printf("%-6d %-10.3f %-10.3f %-6d %-6d\n",
				wp.Week, wp.Precision(), wp.Recall(), wp.TP, wp.FP)
		}
	}
	fmt.Printf("\nretrainings: %d (rule matching %v total)\n",
		len(res.Retrainings), res.MatchDuration)
	for _, rt := range res.Retrainings {
		fmt.Printf("  week %3d: %5d train events, repo %3d rules "+
			"(unchanged %d, +%d, -%d meta, -%d reviser) in %v\n",
			rt.Week, rt.TrainEvents, rt.RepoSize, rt.Churn.Unchanged,
			rt.Churn.Added, rt.Churn.RemovedByMeta, rt.Churn.RemovedByReviser, rt.Total)
	}
	return nil
}
