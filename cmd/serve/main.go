// Command serve runs the streaming prediction service as an HTTP daemon:
// the online, event-driven deployment mode of the framework (paper §4.3).
//
// Usage:
//
//	serve [-addr :8080] [-filter 300] [-window 300] [-train 26] [-retrain 4]
//	      [-policy sliding|whole|static] [-shards 4] [-reorder 60]
//	      [-parallelism 0] [-pprof] [-state-dir DIR]
//
// API:
//
//	POST /ingest    text-codec RAS lines (batched, one per line)
//	GET  /warnings  recent warnings with trigger rules (?n=50)
//	GET  /stats     ingest counts, compression, rules, retrain history
//	GET  /metrics   the same counters plus per-stage latencies and the
//	                live training timings, in Prometheus text exposition
//	GET  /healthz   liveness
//	POST /retrain   force a training pass now
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ for
// CPU/heap/goroutine profiling of the live service. It is opt-in: the
// profiling endpoints expose internals and cost CPU while sampling, so
// they stay off unless asked for.
//
// -state-dir makes the service durable: trained state is snapshotted to
// the directory and every sequenced event is written to a CRC-checked
// write-ahead log, so a crashed or killed process restarts where it left
// off (newest valid snapshot + WAL tail replay — DESIGN.md §9). Without
// it the service is purely in-memory, as before.
//
// Retraining follows *stream time* (event timestamps), so replayed or
// time-compressed feeds retrain on their own timeline. Try it end to end:
//
//	serve &
//	go run ./examples/livefeed -addr http://localhost:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	filter := flag.Int64("filter", 300, "preprocessing filter threshold in seconds (0 disables)")
	window := flag.Int64("window", 300, "prediction window W_P in seconds")
	train := flag.Float64("train", 26, "initial/sliding training window in stream-time weeks")
	retrain := flag.Float64("retrain", 4, "retraining cadence W_R in stream-time weeks")
	policy := flag.String("policy", "sliding", "training policy: sliding, whole or static")
	shards := flag.Int("shards", 4, "parallel preprocessing shards")
	reorder := flag.Int64("reorder", 60, "out-of-order tolerance in stream-time seconds")
	queue := flag.Int("queue", 1024, "per-stage queue length")
	parallelism := flag.Int("parallelism", 0, "background-training workers (0 = GOMAXPROCS, 1 = serial)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in)")
	stateDir := flag.String("state-dir", "", "directory for durable state (snapshots + WAL); empty = in-memory only")
	flag.Parse()

	if err := run(*addr, *filter, *window, *train, *retrain, *policy, *shards, *reorder, *queue, *parallelism, *pprofOn, *stateDir); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(addr string, filter, window int64, train, retrain float64, policy string, shards int, reorder int64, queue, parallelism int, pprofOn bool, stateDir string) error {
	const week = 7 * 24 * time.Hour
	cfg := stream.Defaults()
	cfg.Filter.Threshold = filter
	cfg.Params.WindowSec = window
	cfg.InitialTrain = time.Duration(train * float64(week))
	cfg.TrainWindow = time.Duration(train * float64(week))
	cfg.RetrainEvery = time.Duration(retrain * float64(week))
	cfg.Shards = shards
	cfg.ReorderWindow = time.Duration(reorder) * time.Second
	cfg.QueueLen = queue
	cfg.Parallelism = parallelism
	cfg.StateDir = stateDir
	switch policy {
	case "sliding":
		cfg.Policy = engine.Sliding
	case "whole":
		cfg.Policy = engine.Whole
	case "static":
		cfg.Policy = engine.Static
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	svc, err := stream.New(cfg)
	if err != nil {
		return err
	}
	if stateDir != "" {
		rec := svc.Recovery()
		fmt.Fprintf(os.Stderr, "serve: recovered from %s — snapshot at seq %d, %d WAL events replayed, resuming at seq %d (%d ms)\n",
			stateDir, rec.SnapshotSeq, rec.Replayed, rec.ResumeSeq, rec.DurationMs)
	}

	mux := stream.NewMux(svc)
	if pprofOn {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Addr: addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	extra := ""
	if pprofOn {
		extra = ", pprof on"
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (policy %s, W_P %ds, filter %ds, retrain every %.3gw%s)\n",
		addr, policy, window, filter, retrain, extra)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "serve: shutting down")
	case err := <-errCh:
		svc.Close()
		return err
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		svc.Close()
		return err
	}
	if err := svc.Close(); err != nil {
		return err
	}
	st := svc.Stats()
	fmt.Fprintf(os.Stderr, "serve: drained — %d ingested, %d processed (%.1f%% compression), %d warnings, %d retrains\n",
		st.Ingested, st.Processed, 100*st.CompressionRate, st.WarningsTotal, len(st.Retrains))
	return nil
}
