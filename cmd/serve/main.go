// Command serve runs the streaming prediction service as an HTTP daemon:
// the online, event-driven deployment mode of the framework (paper §4.3).
//
// Usage:
//
//	serve [-addr :8080] [-filter 300] [-window 300] [-train 26] [-retrain 4]
//	      [-policy sliding|whole|static] [-shards 4] [-reorder 60]
//	      [-parallelism 0] [-pprof] [-state-dir DIR]
//	      [-admit-wait 2s] [-read-header-timeout 10s] [-read-timeout 5m]
//	      [-idle-timeout 2m] [-sync-max-wait 0]
//	      [-fleet] [-default-tenant default] [-max-active 0]
//	      [-idle-evict 0] [-retrain-workers 0] [-ingest-slots 0]
//	      [-sync-parallel 0]
//	      [-follow URL] [-follower-id standby] [-follow-poll 250ms]
//	      [-promote-after 0] [-backfill FILE] [-backfill-workers 0]
//
// API:
//
//	POST /ingest    text-codec RAS lines (batched, one per line)
//	GET  /warnings  recent warnings with trigger rules (?n=50)
//	GET  /stats     ingest counts, compression, rules, retrain history
//	GET  /metrics   the same counters plus per-stage latencies and the
//	                live training timings, in Prometheus text exposition
//	GET  /healthz   liveness
//	POST /retrain   force a training pass now
//
// -fleet multiplexes many independent tenants — one full pipeline each —
// in this one process (DESIGN.md §11). Every route above is then also
// available per tenant under /t/{tenant}/..., the unprefixed routes
// alias the default tenant, GET /tenants lists the fleet, GET
// /warnings?all=1 merges every active tenant's warnings, and GET
// /metrics aggregates all tenants with tenant="<id>" labels. With
// -state-dir each tenant persists under <state-dir>/tenants/<id>/.
// -max-active softly caps resident tenants (LRU eviction), -idle-evict
// evicts tenants idle that long (0 = never), and -retrain-workers bounds
// concurrent background training passes fleet-wide (0 = GOMAXPROCS,
// negative = unlimited).
//
// Overload behavior (DESIGN.md §13): when the pipeline is saturated an
// ingest request waits up to -admit-wait for a slot, then gets a 429
// with Retry-After and the first-unaccepted line number, so a client
// backs off and resumes exactly where it stopped — nothing admitted is
// ever dropped or reordered. In fleet mode -ingest-slots additionally
// caps each tenant's concurrent ingest requests (0 = 4, negative =
// uncapped) so one storming tenant cannot camp every admission slot.
// The -read-header-timeout/-read-timeout/-idle-timeout flags bound how
// long a stalled or idle connection may hold server resources.
//
// -follow runs this daemon as a hot standby of another (DESIGN.md §14):
// it tails the leader's WAL over GET /wal/segments + /wal/segment/{name},
// replays every record through the live stage logic, and refuses direct
// ingest (503) until promoted — POST /promote, or automatically once the
// leader has been unreachable for -promote-after. The leader's pruning
// retains any segment a registered follower (-follower-id) has not acked.
// -backfill feeds a historical raw log through the pipeline with bounded
// memory, parsed in parallel but submitted in order behind live traffic
// (POST /backfill does the same with the request body).
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ for
// CPU/heap/goroutine profiling of the live service. It is opt-in: the
// profiling endpoints expose internals and cost CPU while sampling, so
// they stay off unless asked for.
//
// -state-dir makes the service durable: trained state is snapshotted to
// the directory and every sequenced event is written to a CRC-checked
// write-ahead log, so a crashed or killed process restarts where it left
// off (newest valid snapshot + WAL tail replay — DESIGN.md §9). Without
// it the service is purely in-memory, as before. Batch ingest acks are
// released only after the covering fsync; concurrent batches share one
// fsync through the WAL commit pipeline (DESIGN.md §15). -sync-max-wait
// adds a deliberate coalescing delay on top of the self-clocking
// pipeline, and in fleet mode -sync-parallel bounds concurrent fsyncs
// across all tenant stores on the shared disk.
//
// Retraining follows *stream time* (event timestamps), so replayed or
// time-compressed feeds retrain on their own timeline. Try it end to end:
//
//	serve &
//	go run ./examples/livefeed -addr http://localhost:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	filter := flag.Int64("filter", 300, "preprocessing filter threshold in seconds (0 disables)")
	window := flag.Int64("window", 300, "prediction window W_P in seconds")
	train := flag.Float64("train", 26, "initial/sliding training window in stream-time weeks")
	retrain := flag.Float64("retrain", 4, "retraining cadence W_R in stream-time weeks")
	policy := flag.String("policy", "sliding", "training policy: sliding, whole or static")
	shards := flag.Int("shards", 4, "parallel preprocessing shards")
	reorder := flag.Int64("reorder", 60, "out-of-order tolerance in stream-time seconds")
	queue := flag.Int("queue", 1024, "per-stage queue length")
	parallelism := flag.Int("parallelism", 0, "background-training workers (0 = GOMAXPROCS, 1 = serial)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in)")
	stateDir := flag.String("state-dir", "", "directory for durable state (snapshots + WAL); empty = in-memory only")
	fleetOn := flag.Bool("fleet", false, "serve many tenants from this process (routes under /t/{tenant}/)")
	defaultTenant := flag.String("default-tenant", "default", "tenant backing the unprefixed routes in fleet mode")
	maxActive := flag.Int("max-active", 0, "fleet: soft cap on resident tenants, LRU-evicted (0 = uncapped)")
	idleEvict := flag.Duration("idle-evict", 0, "fleet: evict tenants idle this long, e.g. 30m (0 = never)")
	retrainWorkers := flag.Int("retrain-workers", 0, "fleet: concurrent background training passes (0 = GOMAXPROCS, negative = unlimited)")
	admitWait := flag.Duration("admit-wait", 2*time.Second, "max time an ingest request waits for a pipeline slot before a 429")
	syncMaxWait := flag.Duration("sync-max-wait", 0, "WAL group-commit coalescing delay: how long the background syncer lingers so more batches share one fsync (0 = sync as soon as the disk is free)")
	syncParallel := flag.Int("sync-parallel", 0, "fleet: concurrent WAL fsyncs across all tenant stores (0 = 2, negative = unbounded per store)")
	ingestSlots := flag.Int("ingest-slots", 0, "fleet: per-tenant concurrent ingest request cap (0 = 4, negative = uncapped)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "close connections whose request header stalls this long")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "close connections whose request body stalls this long")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "close keep-alive connections idle this long")
	follow := flag.String("follow", "", "run as hot standby of this leader URL (requires -state-dir, excludes -fleet)")
	followerID := flag.String("follower-id", "standby", "stable follower name for the leader's retention guard")
	followPoll := flag.Duration("follow-poll", 250*time.Millisecond, "standby: leader poll interval")
	promoteAfter := flag.Duration("promote-after", 0, "standby: auto-promote after the leader is unreachable this long (0 = manual POST /promote only)")
	backfill := flag.String("backfill", "", "raw text log to backfill through the pipeline behind live traffic")
	backfillWorkers := flag.Int("backfill-workers", 0, "backfill parser workers (0 = half the CPUs)")
	flag.Parse()

	opts := serveOpts{
		addr: *addr, filter: *filter, window: *window, train: *train,
		retrain: *retrain, policy: *policy, shards: *shards, reorder: *reorder,
		queue: *queue, parallelism: *parallelism, pprofOn: *pprofOn,
		stateDir: *stateDir, fleetOn: *fleetOn, defaultTenant: *defaultTenant,
		maxActive: *maxActive, idleEvict: *idleEvict, retrainWorkers: *retrainWorkers,
		admitWait: *admitWait, ingestSlots: *ingestSlots,
		syncMaxWait: *syncMaxWait, syncParallel: *syncParallel,
		readHeaderTimeout: *readHeaderTimeout, readTimeout: *readTimeout,
		idleTimeout: *idleTimeout,
		follow: *follow, followerID: *followerID, followPoll: *followPoll,
		promoteAfter: *promoteAfter, backfill: *backfill, backfillWorkers: *backfillWorkers,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

type serveOpts struct {
	addr           string
	filter, window int64
	train, retrain float64
	policy         string
	shards         int
	reorder        int64
	queue          int
	parallelism    int
	pprofOn        bool
	stateDir       string
	fleetOn        bool
	defaultTenant  string
	maxActive      int
	idleEvict      time.Duration
	retrainWorkers int
	admitWait      time.Duration
	ingestSlots    int
	syncMaxWait    time.Duration
	syncParallel   int

	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration

	follow          string
	followerID      string
	followPoll      time.Duration
	promoteAfter    time.Duration
	backfill        string
	backfillWorkers int
}

func streamConfig(o serveOpts) (stream.Config, error) {
	const week = 7 * 24 * time.Hour
	cfg := stream.Defaults()
	cfg.Filter.Threshold = o.filter
	cfg.Params.WindowSec = o.window
	cfg.InitialTrain = time.Duration(o.train * float64(week))
	cfg.TrainWindow = time.Duration(o.train * float64(week))
	cfg.RetrainEvery = time.Duration(o.retrain * float64(week))
	cfg.Shards = o.shards
	cfg.ReorderWindow = time.Duration(o.reorder) * time.Second
	cfg.QueueLen = o.queue
	cfg.Parallelism = o.parallelism
	cfg.AdmitWait = o.admitWait
	cfg.SyncMaxWait = o.syncMaxWait
	switch o.policy {
	case "sliding":
		cfg.Policy = engine.Sliding
	case "whole":
		cfg.Policy = engine.Whole
	case "static":
		cfg.Policy = engine.Static
	default:
		return cfg, fmt.Errorf("unknown policy %q", o.policy)
	}
	return cfg, nil
}

func promoteMode(d time.Duration) string {
	if d <= 0 {
		return "manual"
	}
	return d.String()
}

// runBackfill feeds -backfill's raw log through the pipeline behind live
// traffic, logging the outcome. Errors are operational news, not fatal:
// the daemon keeps serving either way.
func runBackfill(svc *stream.Service, path string, workers int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: backfill: %v\n", err)
		return
	}
	defer f.Close()
	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "serve: backfill of %s started\n", path)
	res, err := svc.Backfill(context.Background(), f, workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: backfill: %v (%d lines fed first)\n", err, res.Lines)
		return
	}
	secs := time.Since(t0).Seconds()
	fmt.Fprintf(os.Stderr, "serve: backfill done — %d lines (%d skipped) in %.1fs (%.0f lines/s)\n",
		res.Lines, res.Skipped, secs, float64(res.Lines)/secs)
}

// newServer builds the daemon's http.Server with connection hygiene a
// long-lived ingest endpoint needs: without these timeouts a client
// that stalls mid-header (deliberately or not) pins a connection — and
// under -fleet an admission slot's worth of goodwill — forever. The
// body timeout is generous because legitimate batch uploads stream
// multi-megabyte logs over slow links.
func newServer(o serveOpts, mux *http.ServeMux) *http.Server {
	return &http.Server{
		Addr:              o.addr,
		Handler:           mux,
		ReadHeaderTimeout: o.readHeaderTimeout,
		ReadTimeout:       o.readTimeout,
		IdleTimeout:       o.idleTimeout,
	}
}

func run(o serveOpts) error {
	cfg, err := streamConfig(o)
	if err != nil {
		return err
	}
	if o.follow != "" {
		switch {
		case o.fleetOn:
			return errors.New("-follow and -fleet are mutually exclusive (a standby replicates one pipeline)")
		case o.stateDir == "":
			return errors.New("-follow requires -state-dir (the replica keeps its own WAL)")
		case o.backfill != "":
			return errors.New("-follow and -backfill are mutually exclusive (a standby's stream comes from its leader)")
		}
	}

	var (
		mux      *http.ServeMux
		shutdown func() error
		drained  func()
	)
	if o.fleetOn {
		reg, err := fleet.New(fleet.Config{
			Stream:             cfg, // StateDir stays empty; tenants derive theirs from Root
			Root:               o.stateDir,
			DefaultTenant:      o.defaultTenant,
			MaxActive:          o.maxActive,
			IdleAfter:          o.idleEvict,
			RetrainConcurrency: o.retrainWorkers,
			IngestSlots:        o.ingestSlots,
			SyncParallel:       o.syncParallel,
		})
		if err != nil {
			return err
		}
		if o.stateDir != "" {
			fmt.Fprintf(os.Stderr, "serve: fleet root %s — %d tenants known\n",
				o.stateDir, len(reg.List()))
		}
		mux = fleet.NewMux(reg)
		shutdown = reg.Close
		drained = func() {
			// Runs after Close, so every tenant is already inactive.
			fmt.Fprintf(os.Stderr, "serve: fleet drained — %d tenants known\n", len(reg.List()))
		}
	} else {
		cfg.StateDir = o.stateDir
		cfg.Standby = o.follow != ""
		svc, err := stream.New(cfg)
		if err != nil {
			return err
		}
		if o.stateDir != "" {
			rec := svc.Recovery()
			fmt.Fprintf(os.Stderr, "serve: recovered from %s — snapshot at seq %d, %d WAL events replayed, resuming at seq %d (%d ms)\n",
				o.stateDir, rec.SnapshotSeq, rec.Replayed, rec.ResumeSeq, rec.DurationMs)
		}
		var follower *stream.Follower
		if o.follow != "" {
			follower, err = stream.NewFollower(svc, stream.FollowerConfig{
				Leader:       o.follow,
				ID:           o.followerID,
				Poll:         o.followPoll,
				PromoteAfter: o.promoteAfter,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
				},
			})
			if err != nil {
				svc.Close()
				return err
			}
			fmt.Fprintf(os.Stderr, "serve: standby of %s (poll %s, auto-promote %s)\n",
				o.follow, o.followPoll, promoteMode(o.promoteAfter))
		}
		if o.backfill != "" {
			go runBackfill(svc, o.backfill, o.backfillWorkers)
		}
		mux = stream.NewMux(svc)
		shutdown = func() error {
			if follower != nil {
				// Stop pulling before draining; a standby that is shut down
				// stays a standby (its durable state resumes the tail later).
				follower.Stop()
			}
			return svc.Close()
		}
		drained = func() {
			st := svc.Stats()
			fmt.Fprintf(os.Stderr, "serve: drained — %d ingested, %d processed (%.1f%% compression), %d warnings, %d retrains\n",
				st.Ingested, st.Processed, 100*st.CompressionRate, st.WarningsTotal, len(st.Retrains))
		}
	}

	if o.pprofOn {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	srv := newServer(o, mux)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	extra := ""
	if o.pprofOn {
		extra += ", pprof on"
	}
	if o.fleetOn {
		extra += ", fleet mode"
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (policy %s, W_P %ds, filter %ds, retrain every %.3gw%s)\n",
		o.addr, o.policy, o.window, o.filter, o.retrain, extra)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "serve: shutting down")
	case err := <-errCh:
		shutdown()
		return err
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		shutdown()
		return err
	}
	if err := shutdown(); err != nil {
		return err
	}
	drained()
	return nil
}
