package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
)

// testServer starts a newServer-built daemon on a loopback listener
// with a tiny in-memory pipeline behind it, returning its base URL.
func testServer(t *testing.T, o serveOpts) string {
	t.Helper()
	cfg := stream.Defaults()
	cfg.InitialTrain = 1 << 40 * time.Millisecond // never trains
	svc, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := newServer(o, stream.NewMux(svc))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestStalledHeaderConnectionReaped is the slowloris pin: a client that
// opens a connection and never finishes its request header must be
// disconnected once ReadHeaderTimeout elapses, not hold the connection
// (and, in fleet mode, eventually an admission slot) forever.
func TestStalledHeaderConnectionReaped(t *testing.T) {
	const headerTimeout = 300 * time.Millisecond
	addr := testServer(t, serveOpts{
		readHeaderTimeout: headerTimeout,
		readTimeout:       time.Minute,
		idleTimeout:       time.Minute,
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A syntactically valid prefix that never completes: no blank line.
	if _, err := fmt.Fprintf(conn, "POST /ingest HTTP/1.1\r\nHost: x\r\n"); err != nil {
		t.Fatal(err)
	}

	// The server must hang up on its own; the read deadline here is only
	// the test's backstop and is far beyond the configured timeout.
	conn.SetReadDeadline(time.Now().Add(10 * headerTimeout))
	t0 := time.Now()
	buf := make([]byte, 256)
	_, err = conn.Read(buf)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("server responded to an incomplete header instead of closing")
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("connection still open %v after a %v ReadHeaderTimeout", elapsed, headerTimeout)
	}
	if elapsed > 5*headerTimeout {
		t.Errorf("stalled connection reaped after %v, want ~%v", elapsed, headerTimeout)
	}
}

// TestServerStillServesWithTimeouts sanity-checks that well-behaved
// requests are untouched by the connection timeouts.
func TestServerStillServesWithTimeouts(t *testing.T) {
	addr := testServer(t, serveOpts{
		readHeaderTimeout: 300 * time.Millisecond,
		readTimeout:       time.Minute,
		idleTimeout:       time.Minute,
	})
	resp, err := http.Post("http://"+addr+"/ingest", "text/plain",
		strings.NewReader("1|RAS|1|0|R00-M0-N0-C:J01-U01|KERNEL|INFO|probe\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := bufio.NewReader(resp.Body).ReadString('\n')
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
}
