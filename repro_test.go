package repro

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg is a fast end-to-end configuration.
func smallCfg(seed uint64) *SimulatorConfig {
	return ANL(seed).Scaled(16, 0.02)
}

func TestEndToEndPipeline(t *testing.T) {
	cfg := smallCfg(1)
	raw, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, stats := Preprocess(raw, 300)
	if stats.Input != raw.Len() {
		t.Errorf("filter input %d != raw %d", stats.Input, raw.Len())
	}
	if len(events) == 0 {
		t.Fatal("no preprocessed events")
	}
	opts := DefaultOptions()
	opts.InitialTrainWeeks = 8
	opts.TrainWeeks = 8
	res, err := Run(events, cfg.Start, cfg.Weeks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("pipeline produced no warnings")
	}
	if res.Overall.Recall() <= 0 || res.Overall.Precision() <= 0 {
		t.Errorf("degenerate accuracy: %s", res.Overall)
	}
}

func TestGenerateToRoundTrip(t *testing.T) {
	cfg := ANL(2).Scaled(2, 0.02)
	var buf bytes.Buffer
	n, err := GenerateTo(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadLog(&buf, cfg.Name)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Generate(ANL(2).Scaled(2, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != direct.Len() {
		t.Errorf("streamed %d events, direct %d", back.Len(), direct.Len())
	}
	if !back.Sorted() {
		t.Error("streamed log unsorted")
	}
}

func TestWriteReadLog(t *testing.T) {
	raw, err := Generate(ANL(3).Scaled(1, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteLog(&buf, raw); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != raw.Len() {
		t.Errorf("round trip lost events: %d vs %d", back.Len(), raw.Len())
	}
}

func TestOnlinePredictor(t *testing.T) {
	cfg := smallCfg(4)
	raw, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, _ := Preprocess(raw, 300)
	// Split: first 12 weeks to train, rest streamed live.
	weekMs := int64(7 * 24 * 3600 * 1000)
	split := cfg.Start + 12*weekMs
	var history, live []TaggedEvent
	for _, e := range events {
		if e.Time < split {
			history = append(history, e)
		} else {
			live = append(live, e)
		}
	}
	o := NewOnline(DefaultOptions())
	// Untrained: silent.
	if w := o.Observe(live[0]); len(w) != 0 {
		t.Fatal("untrained Online warned")
	}
	stats, err := o.Train(history)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept == 0 || stats.Repo == 0 {
		t.Fatalf("training produced no rules: %+v", stats)
	}
	if len(o.Rules()) != stats.Repo {
		t.Errorf("Rules() = %d, repo = %d", len(o.Rules()), stats.Repo)
	}
	warnings := 0
	for _, e := range live {
		warnings += len(o.Observe(e))
	}
	if warnings == 0 {
		t.Error("trained Online never warned on live stream")
	}
}

func TestOnlineRetrainCarriesClock(t *testing.T) {
	o := NewOnline(DefaultOptions())
	cfg := smallCfg(5)
	raw, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, _ := Preprocess(raw, 300)
	half := len(events) / 2
	if _, err := o.Train(events[:half]); err != nil {
		t.Fatal(err)
	}
	// Observe some events so the elapsed clock is armed.
	for _, e := range events[half : half+50] {
		o.Observe(e)
	}
	before := 0
	for _, r := range o.Rules() {
		_ = r
		before++
	}
	if _, err := o.Train(events[:half]); err != nil { // retrain
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatal("no rules before retrain")
	}
	// The retrained predictor must still be armed (no panic, and the
	// stream continues to be accepted).
	for _, e := range events[half+50 : half+100] {
		o.Observe(e)
	}
}

func TestCatalogAndTag(t *testing.T) {
	cat := NewCatalog()
	if cat.Len() != 219 {
		t.Errorf("catalog size %d", cat.Len())
	}
	raw, err := Generate(ANL(6).Scaled(1, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	tagged := Tag(raw)
	if len(tagged) != raw.Len() {
		t.Errorf("Tag dropped events")
	}
}

func TestDocExampleCompiles(t *testing.T) {
	// The package-comment example, executed end to end on a small scale.
	cfg := ANL(42).Scaled(12, 0.02)
	raw, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, _ := Preprocess(raw, 300)
	opts := DefaultOptions()
	opts.InitialTrainWeeks = 6
	opts.TrainWeeks = 6
	res, err := Run(events, cfg.Start, cfg.Weeks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Overall.String(), "precision") {
		t.Error("Outcome.String malformed")
	}
}
