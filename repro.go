// Package repro is a complete, self-contained reproduction of "Dynamic
// Meta-Learning for Failure Prediction in Large-Scale Systems: A Case
// Study" (Gu, Zheng, Lan, White, Hocks, Park — ICPP 2008; journal version
// by Lan, Gu, Zheng, Thakur, Coghlan).
//
// The package offers the paper's full pipeline as a small public API:
//
//	cfg := repro.ANL(42)                  // a synthetic Blue Gene/L installation
//	raw, _ := repro.Generate(cfg)         // the raw RAS log
//	events, _ := repro.Preprocess(raw, 300) // categorizer + filter (§3)
//	res, _ := repro.Run(events, cfg.Start, cfg.Weeks, repro.DefaultOptions())
//	fmt.Println(res.Overall)              // precision / recall (§5)
//
// Underneath sit the subsystems described in DESIGN.md: the RAS event
// model, the Blue Gene/L log simulator (standing in for the production
// ANL and SDSC logs), data preprocessing, the three base learners
// (association rules, statistical failure-count rules, inter-arrival
// probability distribution), the mixture-of-experts meta-learner, the
// ROC-based reviser, the event-driven predictor, and the dynamic
// retraining engine. The experiment harness regenerating every table and
// figure of the paper lives in internal/exp and is exposed through
// cmd/experiments and the benchmarks in bench_test.go.
package repro

import (
	"io"

	"repro/internal/bgsim"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/learner"
	"repro/internal/meta"
	"repro/internal/predictor"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// Aliases re-exporting the core vocabulary. They refer to internal
// packages, so the implementation stays private while the types remain
// usable by downstream code.
type (
	// Event is one RAS log record (Table 1's eight attributes).
	Event = raslog.Event
	// Log is a time-ordered RAS event collection.
	Log = raslog.Log
	// Severity is the RAS severity level (INFO … FAILURE).
	Severity = raslog.Severity
	// Facility is the component category (KERNEL, MONITOR, ...).
	Facility = raslog.Facility
	// TaggedEvent is a preprocessed event: categorized and flagged fatal.
	TaggedEvent = preprocess.TaggedEvent
	// FilterStats reports the filter's compression.
	FilterStats = preprocess.FilterStats
	// Catalog is the 219-class event catalog (Table 3).
	Catalog = preprocess.Catalog
	// SimulatorConfig parameterizes the synthetic BG/L log generator.
	SimulatorConfig = bgsim.Config
	// Options parameterizes a prediction run (training policy, W_P, W_R).
	Options = engine.Config
	// Result is a prediction run's outcome: warnings, weekly accuracy,
	// retraining records.
	Result = engine.Result
	// Warning is one failure prediction.
	Warning = predictor.Warning
	// Rule is one learned failure pattern.
	Rule = learner.Rule
	// Outcome tallies precision/recall.
	Outcome = eval.Outcome
	// WeekPoint is one week of an accuracy time series.
	WeekPoint = eval.WeekPoint
)

// Training-set policies (Options.Policy).
const (
	// StaticPolicy trains once and never retrains.
	StaticPolicy = engine.Static
	// SlidingPolicy retrains on the most recent Options.TrainWeeks weeks.
	SlidingPolicy = engine.Sliding
	// WholePolicy retrains on all history so far.
	WholePolicy = engine.Whole
)

// ANL returns the simulator configuration calibrated to the Argonne
// Blue Gene/L log (1 rack, 112 weeks, ~5.9 M raw events).
func ANL(seed uint64) *SimulatorConfig { return bgsim.ANL(seed) }

// SDSC returns the simulator configuration calibrated to the San Diego
// Blue Gene/L log (3 racks, 132 weeks, ~517 K raw events, mid-life
// reconfiguration at week 62).
func SDSC(seed uint64) *SimulatorConfig { return bgsim.SDSC(seed) }

// Generate produces the raw RAS log for a configuration.
func Generate(cfg *SimulatorConfig) (*Log, error) {
	g, err := bgsim.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate()
}

// GenerateTo streams the raw RAS log to a writer in the text codec
// without materializing it.
func GenerateTo(cfg *SimulatorConfig, w io.Writer) (int64, error) {
	g, err := bgsim.NewGenerator(cfg)
	if err != nil {
		return 0, err
	}
	var written int64
	buf := raslog.NewLog(cfg.Name, 4096)
	flush := func() error {
		n, err := raslog.WriteLog(w, buf)
		written += n
		buf.Events = buf.Events[:0]
		return err
	}
	err = g.Stream(func(e Event) error {
		buf.Append(e)
		if buf.Len() >= 4096 {
			return flush()
		}
		return nil
	})
	if err != nil {
		return written, err
	}
	return written, flush()
}

// ReadLog reads a text-codec RAS log.
func ReadLog(r io.Reader, name string) (*Log, error) { return raslog.ReadLog(r, name) }

// WriteLog writes a RAS log in the text codec.
func WriteLog(w io.Writer, l *Log) (int64, error) { return raslog.WriteLog(w, l) }

// Preprocess runs the paper's data-preprocessing stage: the filter at the
// given threshold (seconds; the paper's default is 300) followed by the
// categorizer with the curated fatal list. The input log must be
// time-sorted.
func Preprocess(l *Log, thresholdSec int64) ([]TaggedEvent, FilterStats) {
	filtered, stats := preprocess.Filter{Threshold: thresholdSec}.Apply(l)
	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	return z.Tag(filtered), stats
}

// DefaultOptions returns the paper's defaults: W_P = 300 s, dynamic
// retraining every 4 weeks on a sliding six-month training set.
func DefaultOptions() Options { return engine.Defaults() }

// Run executes the dynamic meta-learning framework over a preprocessed,
// time-sorted event stream spanning [start, start + weeks·1 week).
func Run(events []TaggedEvent, start int64, weeks int, opts Options) (*Result, error) {
	return engine.Run(events, start, weeks, opts)
}

// Online is a streaming predictor for embedding in monitoring daemons:
// train it on history, feed it live events, receive warnings. Retrain
// whenever fresh history accumulates (the paper retrains every 4 weeks).
// An Online predictor is not safe for concurrent use.
type Online struct {
	params learner.Params
	ml     *meta.MetaLearner
	repo   *meta.Repository
	pr     *predictor.Predictor
}

// NewOnline creates an untrained streaming predictor with the prediction
// window of opts (other Options fields concern offline runs and are
// ignored here).
func NewOnline(opts Options) *Online {
	params := opts.Params
	if params.WindowSec <= 0 {
		params.WindowSec = 300
	}
	return &Online{
		params: params,
		ml:     meta.New(),
		repo:   meta.NewRepository(),
	}
}

// TrainStats summarizes one (re)training pass.
type TrainStats struct {
	Candidates int
	Kept       int
	Repo       int
}

// Train (re)learns rules from a training stream and swaps them into the
// live predictor; accumulated runtime state (the elapsed-failure clock)
// carries over.
func (o *Online) Train(history []TaggedEvent) (TrainStats, error) {
	report, err := o.ml.Train(history, o.params)
	if err != nil {
		return TrainStats{}, err
	}
	o.repo.Update(report)
	var lastFatal int64 = -1
	if o.pr != nil {
		lastFatal = o.pr.LastFatal()
	}
	o.pr = predictor.New(o.repo.Rules(), o.params)
	o.pr.GlobalDedup = true
	o.pr.SeedLastFatal(lastFatal)
	return TrainStats{
		Candidates: len(report.Candidates),
		Kept:       len(report.Kept),
		Repo:       o.repo.Len(),
	}, nil
}

// Rules returns the current rule set.
func (o *Online) Rules() []Rule {
	return o.repo.Rules()
}

// Observe feeds one live event (events must arrive in time order) and
// returns any warning it triggers. Before the first Train call it
// returns nothing.
func (o *Online) Observe(e TaggedEvent) []Warning {
	if o.pr == nil {
		return nil
	}
	return o.pr.Observe(e)
}

// NewCatalog returns the standard Blue Gene/L event catalog.
func NewCatalog() *Catalog { return preprocess.NewCatalog() }

// Tag categorizes a raw (already filtered) log without re-filtering.
func Tag(l *Log) []TaggedEvent {
	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	return z.Tag(l)
}
