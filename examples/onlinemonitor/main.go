// Onlinemonitor: the framework as a streaming daemon.
//
// It demonstrates the repro.Online API: train on accumulated history,
// consume a live event stream one record at a time, emit warnings with
// their realized lead times, and retrain mid-stream every four weeks —
// the deployment mode the paper argues for ("an event-driven approach is
// well suited for online failure prediction").
//
//	go run ./examples/onlinemonitor
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const weekMs = 7 * 24 * 3600 * 1000

func main() {
	cfg := repro.SDSC(23).Scaled(32, 0.05)
	raw, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	events, _ := repro.Preprocess(raw, 300)

	const trainWeeks = 12
	split := cfg.Start + trainWeeks*weekMs
	var history, live []repro.TaggedEvent
	for _, e := range events {
		if e.Time < split {
			history = append(history, e)
		} else {
			live = append(live, e)
		}
	}

	online := repro.NewOnline(repro.DefaultOptions())
	st, err := online.Train(history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d events: %d candidate rules, %d kept\n\n",
		len(history), st.Candidates, st.Kept)

	// Stream the remaining weeks; retrain every 4 weeks on the most
	// recent 12 weeks, exactly like the paper's dynamic framework.
	nextRetrain := split + 4*weekMs
	var open []repro.Warning
	warnings, hits := 0, 0
	fatals, predictedFatals := 0, 0
	for i, e := range live {
		if e.Time >= nextRetrain {
			lo := e.Time - trainWeeks*weekMs
			var window []repro.TaggedEvent
			for _, h := range append(history, live[:i]...) {
				if h.Time >= lo && h.Time < e.Time {
					window = append(window, h)
				}
			}
			st, err := online.Train(window)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s  retrained: %d rules in repository\n",
				stamp(e.Time), st.Repo)
			nextRetrain += 4 * weekMs
		}

		if e.Fatal {
			fatals++
			covered := false
			for _, w := range open {
				if w.Time < e.Time && e.Time <= w.Deadline {
					covered = true
					lead := time.Duration(e.Time-w.Time) * time.Millisecond
					fmt.Printf("%s  FAILURE %q — predicted %s earlier by %s\n",
						stamp(e.Time), e.Entry, lead.Round(time.Second), w.Source)
					hits++
					break
				}
			}
			if covered {
				predictedFatals++
			}
		}

		for _, w := range online.Observe(e) {
			warnings++
			open = append(open, w)
			if len(open) > 16 { // keep only recent windows
				open = open[len(open)-16:]
			}
		}
	}

	fmt.Printf("\nstream summary: %d live events, %d fatals, %d warnings\n",
		len(live), fatals, warnings)
	if fatals > 0 {
		fmt.Printf("failures predicted: %d/%d (%.0f%%)\n",
			predictedFatals, fatals, 100*float64(predictedFatals)/float64(fatals))
	}
}

func stamp(ms int64) string {
	return time.UnixMilli(ms).UTC().Format("2006-01-02 15:04")
}
