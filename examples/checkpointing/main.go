// Checkpointing: failure-aware checkpoint scheduling driven by the
// framework's warnings — the paper's §1.1 motivation ("an efficient
// failure prediction could substantially reduce [checkpointing's]
// operational cost by telling when and where to perform checkpoints").
//
// A long-running application executes across the test span of a simulated
// SDSC log. Whenever a failure strikes, all work since the last
// checkpoint is lost. Three strategies compete:
//
//   - periodic-1h:  blind checkpoints every hour;
//   - periodic-4h:  blind checkpoints every four hours;
//   - predictive:   checkpoint when the predictor warns, with a 6 h
//     fallback so silent stretches stay bounded.
//
// The predictive strategy converts recall into less lost work and
// precision into fewer wasted checkpoints.
//
//	go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
)

const (
	checkpointCost = 4 * time.Minute // time to write one checkpoint
)

func main() {
	cfg := repro.SDSC(7).Scaled(40, 0.05)
	raw, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	events, _ := repro.Preprocess(raw, 300)

	opts := repro.DefaultOptions()
	opts.InitialTrainWeeks = 16
	opts.TrainWeeks = 16
	res, err := repro.Run(events, cfg.Start, cfg.Weeks, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictor over the test span: %s\n\n", res.Overall)

	start := cfg.Start + int64(res.TestFrom)*7*24*3600*1000
	end := cfg.Start + int64(cfg.Weeks)*7*24*3600*1000

	warnTimes := make([]int64, 0, len(res.Warnings))
	for _, w := range res.Warnings {
		warnTimes = append(warnTimes, w.Time)
	}
	sort.Slice(warnTimes, func(i, j int) bool { return warnTimes[i] < warnTimes[j] })

	fmt.Printf("%-14s %14s %14s %12s %14s\n",
		"strategy", "lost work", "checkpoints", "ckpt cost", "total waste")
	for _, s := range []strategy{
		periodic{"periodic-1h", time.Hour},
		periodic{"periodic-4h", 4 * time.Hour},
		predictive{warnTimes, 6 * time.Hour},
	} {
		lost, ckpts := simulate(s, start, end, res.FatalTimes)
		overhead := time.Duration(ckpts) * checkpointCost
		fmt.Printf("%-14s %14s %14d %12s %14s\n",
			s.name(), lost.Round(time.Minute), ckpts,
			overhead.Round(time.Minute), (lost + overhead).Round(time.Minute))
	}
}

// strategy decides the next checkpoint instant given the current time.
type strategy interface {
	name() string
	// next returns the next checkpoint time strictly after now (ms).
	next(now int64) int64
}

type periodic struct {
	label    string
	interval time.Duration
}

func (p periodic) name() string { return p.label }
func (p periodic) next(now int64) int64 {
	return now + p.interval.Milliseconds()
}

// predictive checkpoints at each warning (warnings within the fallback
// horizon take priority) and otherwise at the fallback interval.
type predictive struct {
	warnings []int64 // sorted ms
	fallback time.Duration
}

func (p predictive) name() string { return "predictive" }
func (p predictive) next(now int64) int64 {
	deadline := now + p.fallback.Milliseconds()
	i := sort.Search(len(p.warnings), func(i int) bool { return p.warnings[i] > now })
	if i < len(p.warnings) && p.warnings[i] < deadline {
		return p.warnings[i]
	}
	return deadline
}

// simulate replays the fatal record against a checkpoint schedule and
// accumulates the work lost to each failure (time since the last
// checkpoint) plus the number of checkpoints taken.
func simulate(s strategy, start, end int64, fatals []int64) (lost time.Duration, checkpoints int) {
	lastCkpt := start
	nextCkpt := s.next(start)
	fi := 0
	for now := start; now < end; {
		// Advance to whichever comes first: the next checkpoint or the
		// next fatal.
		var nextFatal int64 = end
		if fi < len(fatals) {
			nextFatal = fatals[fi]
		}
		if nextCkpt <= nextFatal {
			now = nextCkpt
			lastCkpt = now
			checkpoints++
			nextCkpt = s.next(now)
			continue
		}
		now = nextFatal
		fi++
		lost += time.Duration(now-lastCkpt) * time.Millisecond
		// The application restarts from the checkpoint; schedule anew.
		nextCkpt = s.next(now)
	}
	return lost, checkpoints
}
