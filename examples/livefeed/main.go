// Livefeed: an end-to-end client for cmd/serve. It generates a synthetic
// SDSC Blue Gene/L RAS log and pipes it into the daemon over HTTP in
// real-time-compressed mode — weeks of stream time replayed in seconds of
// wall time, one POST /ingest/batch per chunk, so the daemon commits each
// chunk to its WAL with a single group-commit fsync — while polling
// GET /warnings and GET /stats like a monitoring dashboard would.
//
// Pair it with a daemon whose training windows fit the feed length:
//
//	go run ./cmd/serve -train 4 -retrain 3 &
//	go run ./examples/livefeed -addr http://localhost:8080
//
// Against a fleet-mode daemon (cmd/serve -fleet), -tenant feeds one
// tenant's scoped routes (/t/<tenant>/ingest/batch and friends), so
// several livefeed processes with different -tenant and -seed values
// exercise true multi-tenant serving from one daemon.
//
// The daemon retrains on the stream's own timeline, so several retrain
// cycles complete during the replay; the final poll shows the live rule
// set and the latest predictions.
package main

import (
	"bufio"
	"strings"

	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/httpx"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "serve daemon base URL")
	seed := flag.Uint64("seed", 7, "generator seed")
	weeks := flag.Int("weeks", 14, "length of the generated feed in weeks")
	scale := flag.Float64("scale", 0.05, "raw duplication scale (full SDSC = 1)")
	batch := flag.Int("batch", 2000, "events per POST /ingest/batch")
	pause := flag.Duration("pause", 50*time.Millisecond, "pause between batches")
	tenant := flag.String("tenant", "", "feed this tenant of a fleet-mode daemon (routes under /t/<tenant>/)")
	flag.Parse()

	if err := run(*addr, *tenant, *seed, *weeks, *scale, *batch, *pause); err != nil {
		log.Fatal("livefeed: ", err)
	}
}

// Client-side mirrors of the daemon's JSON (an external client would
// define these too). Line is the 1-based input line a failed batch
// stopped at: every line before it was accepted, so the client resumes
// from there instead of re-sending (and double-ingesting) the batch.
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Line     int    `json:"line"`
	Error    string `json:"error,omitempty"`
}

type warning struct {
	Time   string `json:"time"`
	Source string `json:"source"`
	Rule   string `json:"rule"`
}

type stats struct {
	Ingested        int64   `json:"ingested"`
	Processed       int64   `json:"processed"`
	CompressionRate float64 `json:"compression_rate"`
	WarningsTotal   int64   `json:"warnings_total"`
	Rules           int64   `json:"rules"`
	Retrains        []struct {
		AtMs int64  `json:"at_ms"`
		Err  string `json:"err,omitempty"`
	} `json:"retrains"`
}

func run(addr, tenant string, seed uint64, weeks int, scale float64, batch int, pause time.Duration) error {
	// Liveness is checked on the daemon root — a fleet tenant may not
	// exist yet (the first POST creates it) — then every route below
	// rides the tenant prefix.
	if _, err := http.Get(addr + "/healthz"); err != nil {
		return fmt.Errorf("daemon not reachable (start ./cmd/serve first): %w", err)
	}
	if tenant != "" {
		addr += "/t/" + tenant
	}

	cfg := repro.SDSC(seed).Scaled(weeks, scale)
	pr, pw := io.Pipe()
	go func() {
		_, err := repro.GenerateTo(cfg, pw)
		pw.CloseWithError(err)
	}()

	fmt.Printf("feeding %s (%d weeks, scale %g) to %s\n", cfg.Name, weeks, scale, addr)
	sc := bufio.NewScanner(pr)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var (
		pending []string
		sent    int
		batches int
	)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		n, err := postBatch(addr, pending)
		sent += n
		if err != nil {
			return err
		}
		pending = pending[:0]
		batches++
		if batches%25 == 0 {
			if err := poll(addr, sent); err != nil {
				return err
			}
			time.Sleep(pause)
		}
		return nil
	}
	for sc.Scan() {
		pending = append(pending, sc.Text())
		if len(pending) >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}

	fmt.Printf("feed complete: %d events sent\n", sent)
	return finalReport(addr)
}

// Retry policy for one batch: exponential backoff starting at retryBase,
// capped at retryMax per wait, giving up after retryCap consecutive
// fruitless attempts. An attempt that makes progress (the daemon accepted
// some lines before pushing back) resets the budget.
const (
	retryBase = 250 * time.Millisecond
	retryMax  = 5 * time.Second
	retryCap  = 8
)

// postBatch sends lines to POST /ingest/batch, riding out transient
// failures: network errors retry the remaining lines with backoff, and a
// 503 (backpressure timeout or restarting daemon) resumes from the line
// the response says the daemon stopped at — the batch endpoint accepts
// whole chunks, so Line is always the first unconsumed input line and
// already-accepted events are not ingested twice. A 400 means the batch
// itself is malformed — fatal. Returns the number of events accepted.
func postBatch(addr string, lines []string) (int, error) {
	accepted := 0
	failures := 0
	delay := retryBase
	for len(lines) > 0 {
		if failures > 0 {
			if failures > retryCap {
				return accepted, fmt.Errorf("ingest: giving up after %d retries", retryCap)
			}
			time.Sleep(delay)
			delay *= 2
			if delay > retryMax {
				delay = retryMax
			}
		}
		body := strings.NewReader(strings.Join(lines, "\n") + "\n")
		resp, err := http.Post(addr+"/ingest/batch", "text/plain", body)
		if err != nil {
			// Connection-level failure: the response is lost, so re-send the
			// remaining lines (at-least-once; the slice was not trimmed).
			failures++
			log.Printf("livefeed: ingest: %v (retry %d/%d in %s)", err, failures, retryCap, delay)
			continue
		}
		var ir ingestResponse
		derr := json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if derr != nil {
			failures++
			log.Printf("livefeed: ingest: bad response: %v (retry %d/%d in %s)", derr, failures, retryCap, delay)
			continue
		}
		accepted += ir.Accepted
		switch resp.StatusCode {
		case http.StatusOK:
			return accepted, nil
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			// Lines before ir.Line were accepted; resume from there. A 429
			// (admission timed out at a saturated pipeline) carries the same
			// resume contract as a 503 (restarting daemon); when the server
			// sends a Retry-After hint longer than our backoff, honor it.
			if ir.Line > 0 {
				lines = lines[ir.Line-1:]
			}
			if ir.Accepted > 0 {
				failures = 0
				delay = retryBase
			}
			if hint := httpx.RetryAfter(resp.Header, 0, retryMax); hint > delay {
				delay = hint
			}
			failures++
			log.Printf("livefeed: daemon busy (HTTP %d: %s), %d lines left (retry %d/%d in %s)",
				resp.StatusCode, ir.Error, len(lines), failures, retryCap, delay)
		default:
			return accepted, fmt.Errorf("ingest rejected (HTTP %d): %s", resp.StatusCode, ir.Error)
		}
	}
	return accepted, nil
}

// poll prints a dashboard line mid-feed.
func poll(addr string, sent int) error {
	var st stats
	if err := getJSON(addr+"/stats", &st); err != nil {
		return err
	}
	fmt.Printf("  sent %7d | processed %6d (%.1f%% compressed) | rules %3d | retrains %d | warnings %d\n",
		sent, st.Processed, 100*st.CompressionRate, st.Rules, len(st.Retrains), st.WarningsTotal)
	return nil
}

// finalReport waits for the daemon's asynchronous pipeline to settle
// (ingestion is acknowledged before filtering, prediction, and any
// in-flight retraining complete), then prints the latest predictions.
func finalReport(addr string) error {
	var st stats
	stable := 0
	for i := 0; i < 200 && stable < 3; i++ {
		prev := st
		if err := getJSON(addr+"/stats", &st); err != nil {
			return err
		}
		if i > 0 && st.Processed == prev.Processed && len(st.Retrains) == len(prev.Retrains) {
			stable++
		} else {
			stable = 0
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("\ndaemon state: %d ingested, %d processed, %d rules live, %d retrains, %d warnings total\n",
		st.Ingested, st.Processed, st.Rules, len(st.Retrains), st.WarningsTotal)
	for _, r := range st.Retrains {
		status := "ok"
		if r.Err != "" {
			status = "FAILED: " + r.Err
		}
		fmt.Printf("  retrain at stream time %s — %s\n",
			time.UnixMilli(r.AtMs).UTC().Format("2006-01-02 15:04"), status)
	}

	var warns []warning
	if err := getJSON(addr+"/warnings?n=10", &warns); err != nil {
		return err
	}
	if len(warns) == 0 {
		fmt.Println("no recent warnings (did the daemon retrain? check -train fits the feed length)")
		os.Exit(1)
	}
	fmt.Println("\nmost recent predictions:")
	for _, w := range warns {
		fmt.Printf("  %s  failure expected within W_P  (%s rule %s)\n", w.Time, w.Source, w.Rule)
	}
	return nil
}

func getJSON(url string, v interface{}) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
