// Quickstart: the paper's whole pipeline in one page.
//
// It simulates a small Blue Gene/L installation, preprocesses the raw RAS
// log (categorize + filter), runs the dynamic meta-learning framework
// over it, and prints the prediction accuracy week by week.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 30-week SDSC-like installation at reduced raw-duplication scale
	// (the unique event structure the learners see is unchanged).
	cfg := repro.SDSC(42).Scaled(30, 0.05)

	raw, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw RAS log: %d events over %d weeks\n", raw.Len(), cfg.Weeks)

	// Data preprocessing (paper §3): categorize into the 219-class
	// catalog and compress duplicates with the 300 s threshold.
	events, stats := repro.Preprocess(raw, 300)
	fmt.Printf("after filtering: %d events (%.1f%% compression)\n",
		len(events), 100*stats.CompressionRate())

	// The dynamic meta-learning framework (paper §4): train on the first
	// 12 weeks, retrain every 4 weeks on a sliding 12-week window,
	// predict failures within a 300 s window.
	opts := repro.DefaultOptions()
	opts.InitialTrainWeeks = 12
	opts.TrainWeeks = 12
	res, err := repro.Run(events, cfg.Start, cfg.Weeks, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nweekly accuracy (test weeks %d-%d):\n", res.TestFrom, cfg.Weeks-1)
	fmt.Printf("%-6s %-10s %-8s %-8s\n", "week", "precision", "recall", "fatals")
	for _, wp := range res.Weekly {
		fmt.Printf("%-6d %-10.2f %-8.2f %-8d\n", wp.Week, wp.Precision(), wp.Recall(), wp.Fatals)
	}
	fmt.Printf("\noverall: %s\n", res.Overall)

	fmt.Println("\nknowledge repository across retrainings:")
	for _, rt := range res.Retrainings {
		fmt.Printf("  week %2d: %3d rules (unchanged %3d, added %3d, removed %d+%d)\n",
			rt.Week, rt.RepoSize, rt.Churn.Unchanged, rt.Churn.Added,
			rt.Churn.RemovedByMeta, rt.Churn.RemovedByReviser)
	}
}
