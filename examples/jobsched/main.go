// Jobsched: failure-aware job scheduling, the other §1.1 motivation
// ("failure-aware resource management and scheduling").
//
// A stream of batch jobs arrives at a simulated machine. A job that is
// running when a fatal event strikes is killed and must rerun from
// scratch. Two schedulers compete over the same job stream and the same
// failure record:
//
//   - baseline: starts every job immediately;
//   - failure-aware: holds job starts while a failure warning is open
//     (predicted failure within W_P), releasing them once the window
//     passes.
//
// Good recall converts into fewer killed jobs; the price of false alarms
// is added queueing delay.
//
//	go run ./examples/jobsched
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
	"repro/internal/stats"
)

func main() {
	cfg := repro.SDSC(11).Scaled(40, 0.05)
	raw, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	events, _ := repro.Preprocess(raw, 300)
	opts := repro.DefaultOptions()
	opts.InitialTrainWeeks = 16
	opts.TrainWeeks = 16
	res, err := repro.Run(events, cfg.Start, cfg.Weeks, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictor over the test span: %s\n\n", res.Overall)

	start := cfg.Start + int64(res.TestFrom)*7*24*3600*1000
	end := cfg.Start + int64(cfg.Weeks)*7*24*3600*1000

	jobs := generateJobs(start, end, 9001)
	fmt.Printf("job stream: %d jobs (30 min - 4 h runtimes)\n\n", len(jobs))

	baseKilled, baseDelay := schedule(jobs, res.FatalTimes, nil)
	awareKilled, awareDelay := schedule(jobs, res.FatalTimes, res.Warnings)

	fmt.Printf("%-15s %10s %18s\n", "scheduler", "killed", "mean start delay")
	fmt.Printf("%-15s %10d %18s\n", "baseline", baseKilled, baseDelay.Round(time.Second))
	fmt.Printf("%-15s %10d %18s\n", "failure-aware", awareKilled, awareDelay.Round(time.Second))
	if baseKilled > 0 {
		fmt.Printf("\nkilled-job reduction: %.1f%%\n",
			100*float64(baseKilled-awareKilled)/float64(baseKilled))
	}
}

type job struct {
	arrival int64 // ms
	runtime int64 // ms
}

// generateJobs produces a Poisson arrival stream with log-uniform
// runtimes between 30 minutes and 4 hours.
func generateJobs(start, end int64, seed uint64) []job {
	r := stats.NewRNG(seed)
	var jobs []job
	t := start
	for {
		t += int64(r.ExpFloat64() * 45 * 60 * 1000) // mean 45 min between arrivals
		if t >= end {
			return jobs
		}
		runtime := int64(30*60*1000) + r.Int63n(int64(3.5*60*60*1000))
		jobs = append(jobs, job{arrival: t, runtime: runtime})
	}
}

// schedule replays the job stream. With warnings, a job whose start falls
// inside an open warning window is postponed to the window's deadline
// (re-checked against any newer warning). A running job is killed and
// restarted whenever a fatal event occurs before it finishes; each job
// gives up after 5 kills.
func schedule(jobs []job, fatals []int64, warnings []repro.Warning) (killed int, meanDelay time.Duration) {
	var totalDelay time.Duration
	for _, j := range jobs {
		startAt := j.arrival
		if warnings != nil {
			startAt = deferPastWarnings(startAt, warnings)
		}
		totalDelay += time.Duration(startAt-j.arrival) * time.Millisecond
		// Run, restarting on failures.
		for attempt := 0; attempt < 5; attempt++ {
			finish := startAt + j.runtime
			k := firstFatalIn(fatals, startAt, finish)
			if k < 0 {
				break
			}
			killed++
			startAt = fatals[k] + 60_000 // restart a minute after the crash
			if warnings != nil {
				startAt = deferPastWarnings(startAt, warnings)
			}
		}
	}
	if len(jobs) == 0 {
		return killed, 0
	}
	return killed, totalDelay / time.Duration(len(jobs))
}

// deferPastWarnings pushes a start time past every warning window that
// covers it.
func deferPastWarnings(t int64, warnings []repro.Warning) int64 {
	for {
		moved := false
		i := sort.Search(len(warnings), func(i int) bool { return warnings[i].Deadline >= t })
		for ; i < len(warnings) && warnings[i].Time <= t; i++ {
			if t > warnings[i].Time && t <= warnings[i].Deadline {
				t = warnings[i].Deadline + 1
				moved = true
			}
		}
		if !moved {
			return t
		}
	}
}

// firstFatalIn returns the index of the first fatal in (from, to], or -1.
func firstFatalIn(fatals []int64, from, to int64) int {
	i := sort.Search(len(fatals), func(i int) bool { return fatals[i] > from })
	if i < len(fatals) && fatals[i] <= to {
		return i
	}
	return -1
}
